package opt

import (
	"math/rand"
	"testing"

	"odin/internal/interp"
	"odin/internal/ir"
	"odin/internal/irtext"
)

const isLowerSrc = `
func @islower(%chr: i8) -> i1 {
test_lb:
  %cmp1 = icmp sge i8 %chr, 97
  condbr %cmp1, test_ub, end
test_ub:
  %cmp2 = icmp sle i8 %chr, 122
  br end
end:
  %r = phi i1 [0, test_lb], [%cmp2, test_ub]
  ret i1 %r
}
`

// TestIsLowerRangeFold reproduces Figure 2: after optimization the function
// must contain a single basic block, one comparison, and no branches.
func TestIsLowerRangeFold(t *testing.T) {
	m := irtext.MustParse("m", isLowerSrc)
	Optimize(m, &Options{Level: 2})
	ir.MustVerify(m)
	f := m.LookupFunc("islower")
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks after opt = %d, want 1:\n%s", len(f.Blocks), ir.Print(m))
	}
	nCmp, nBr := 0, 0
	for _, in := range f.Blocks[0].Instrs {
		switch in.Op {
		case ir.OpICmp:
			nCmp++
			if in.Pred != ir.PredULT {
				t.Errorf("folded predicate = %s, want ult", in.Pred)
			}
		case ir.OpCondBr:
			nBr++
		}
	}
	if nCmp != 1 || nBr != 0 {
		t.Fatalf("cmps=%d branches=%d, want 1/0:\n%s", nCmp, nBr, ir.Print(m))
	}
	// Semantics preserved for all 256 inputs.
	checkIsLowerSemantics(t, m)
}

func checkIsLowerSemantics(t *testing.T, m *ir.Module) {
	t.Helper()
	ip, err := interp.New(m, newEnvForTest())
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 256; c++ {
		got, err := ip.Run("islower", ir.TruncToWidth(int64(c), ir.I8))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(0)
		if c >= 'a' && c <= 'z' {
			want = 1
		}
		if got != want {
			t.Fatalf("islower(%d) = %d, want %d\n%s", c, got, want, ir.Print(m))
		}
	}
}

// TestRangeFoldBlockedBySideEffect checks the correctness mechanism Odin
// relies on: a probe call inserted in the middle block prevents the fold.
func TestRangeFoldBlockedBySideEffect(t *testing.T) {
	src := `
declare func @probe(%id: i64) -> void
func @islower(%chr: i8) -> i1 {
test_lb:
  %cmp1 = icmp sge i8 %chr, 97
  condbr %cmp1, test_ub, end
test_ub:
  call void @probe(i64 1)
  %cmp2 = icmp sle i8 %chr, 122
  br end
end:
  %r = phi i1 [0, test_lb], [%cmp2, test_ub]
  ret i1 %r
}
`
	m := irtext.MustParse("m", src)
	Optimize(m, &Options{Level: 2})
	ir.MustVerify(m)
	f := m.LookupFunc("islower")
	nCmp := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpICmp {
				nCmp++
			}
		}
	}
	if nCmp != 2 {
		t.Fatalf("probe did not block fold; cmps = %d, want 2:\n%s", nCmp, ir.Print(m))
	}
}

// TestFigure4 reproduces the paper's Figure 4: dead-argument elimination on
// foo plus the printf -> puts rewrite, with both dependencies reported.
func TestFigure4(t *testing.T) {
	src := `
const @str : [7 x i8] = bytes"\68\65\6c\6c\6f\0a\00"
declare func @printf(%fmt: ptr) -> i32
func @foo(%unused: i32) -> void internal noinline {
entry:
  %r = call i32 @printf(ptr @str)
  ret void
}
func @main() -> i32 {
entry:
  call void @foo(i32 1)
  ret i32 0
}
`
	m := irtext.MustParse("m", src)
	rep := &Report{}
	Optimize(m, &Options{Level: 2, Report: rep})
	ir.MustVerify(m)
	rep.Dedup()

	foo := m.LookupFunc("foo")
	if foo == nil {
		t.Fatalf("foo eliminated:\n%s", ir.Print(m))
	}
	if len(foo.Params) != 0 {
		t.Fatalf("dead arg not eliminated: %d params", len(foo.Params))
	}
	callFoo := m.LookupFunc("main").Blocks[0].Instrs[0]
	if callFoo.Op != ir.OpCall || callFoo.Callee != "foo" || len(callFoo.Operands) != 0 {
		t.Fatalf("caller not rewritten: %s", ir.FormatInstr(callFoo))
	}
	callPrintf := foo.Blocks[0].Instrs[0]
	if callPrintf.Callee != "puts" {
		t.Fatalf("printf not rewritten to puts: %s", ir.FormatInstr(callPrintf))
	}
	ng := callPrintf.Operands[0].(*ir.GlobalVar)
	if string(ng.Init) != "hello\x00" {
		t.Fatalf("puts string = %q, want hello", ng.Init)
	}
	// Dependencies must be reported for the partitioner.
	foundBond := false
	for _, bp := range rep.Bonds {
		if (bp[0] == "foo" && bp[1] == "main") || (bp[0] == "main" && bp[1] == "foo") {
			foundBond = true
		}
	}
	if !foundBond {
		t.Fatalf("missing foo/main bond: %v", rep.Bonds)
	}
	foundCopy := false
	for _, cu := range rep.CopyUses {
		if cu[0] == "str" && cu[1] == "foo" {
			foundCopy = true
		}
	}
	if !foundCopy {
		t.Fatalf("missing str copy-use: %v", rep.CopyUses)
	}
	// Output semantics preserved.
	ip, err := interp.New(m, newEnvForTest())
	if err != nil {
		t.Fatal(err)
	}
	env := ip.Env
	if _, err := ip.Run("main"); err != nil {
		t.Fatal(err)
	}
	if env.Out.String() != "hello\n" {
		t.Fatalf("output = %q, want hello\\n", env.Out.String())
	}
}

// TestPrintfFoldNeedsDefinition: with only a declaration of the string, the
// rewrite must not fire (the missed-optimization effect from §2.3).
func TestPrintfFoldNeedsDefinition(t *testing.T) {
	src := `
declare const @str : [7 x i8]
declare func @printf(%fmt: ptr) -> i32
func @show() -> void {
entry:
  %r = call i32 @printf(ptr @str)
  ret void
}
`
	m := irtext.MustParse("m", src)
	Optimize(m, &Options{Level: 2})
	ir.MustVerify(m)
	call := m.LookupFunc("show").Blocks[0].Instrs[0]
	if call.Callee != "printf" {
		t.Fatalf("fold fired without definition: %s", ir.FormatInstr(call))
	}
}

// TestDAENeedsInternalLinkage: exported functions keep their parameters.
func TestDAENeedsInternalLinkage(t *testing.T) {
	src := `
func @foo(%unused: i32) -> i32 {
entry:
  ret i32 7
}
func @main() -> i32 {
entry:
  %r = call i32 @foo(i32 1)
  ret i32 %r
}
`
	m := irtext.MustParse("m", src)
	Optimize(m, &Options{Level: 2, MaxInlineInstrs: 1})
	ir.MustVerify(m)
	if f := m.LookupFunc("foo"); f != nil && len(f.Params) != 1 {
		t.Fatalf("DAE fired on external function")
	}
}

func TestInlineSmallFunction(t *testing.T) {
	src := `
func @add3(%x: i64) -> i64 internal {
entry:
  %r = add i64 %x, 3
  ret i64 %r
}
func @main() -> i64 {
entry:
  %a = call i64 @add3(i64 4)
  %b = call i64 @add3(i64 %a)
  ret i64 %b
}
`
	m := irtext.MustParse("m", src)
	rep := &Report{}
	Optimize(m, &Options{Level: 2, Report: rep})
	ir.MustVerify(m)
	main := m.LookupFunc("main")
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				t.Fatalf("call survived inlining: %s", ir.FormatInstr(in))
			}
		}
	}
	// Whole thing should constant-fold to ret 10.
	term := main.Blocks[0].Instrs[len(main.Blocks[0].Instrs)-1]
	if term.Op != ir.OpRet || !ir.IsConstEq(term.Operands[0], 10) {
		t.Fatalf("did not fold to ret 10:\n%s", ir.Print(m))
	}
	// add3 is internal and now unreferenced: global DCE removes it.
	if m.LookupFunc("add3") != nil {
		t.Fatalf("dead internal function survived:\n%s", ir.Print(m))
	}
	rep.Dedup()
	found := false
	for _, bp := range rep.Bonds {
		if bp[0] == "add3" && bp[1] == "main" {
			found = true
		}
	}
	if !found {
		t.Fatalf("inline bond not reported: %v", rep.Bonds)
	}
}

func TestInlineRespectNoInline(t *testing.T) {
	src := `
func @f(%x: i64) -> i64 internal noinline {
entry:
  %r = add i64 %x, 3
  ret i64 %r
}
func @main() -> i64 {
entry:
  %a = call i64 @f(i64 4)
  ret i64 %a
}
`
	m := irtext.MustParse("m", src)
	Optimize(m, &Options{Level: 2})
	ir.MustVerify(m)
	if m.LookupFunc("f") == nil {
		t.Fatal("noinline function removed")
	}
	hasCall := false
	for _, in := range m.LookupFunc("main").Blocks[0].Instrs {
		if in.Op == ir.OpCall {
			hasCall = true
		}
	}
	if !hasCall {
		t.Fatal("noinline function was inlined")
	}
}

func TestInlineMultiReturn(t *testing.T) {
	src := `
func @pick(%x: i64) -> i64 internal {
entry:
  %c = icmp sgt i64 %x, 10
  condbr %c, big, small
big:
  ret i64 100
small:
  %d = add i64 %x, 1
  ret i64 %d
}
func @main(%v: i64) -> i64 {
entry:
  %a = call i64 @pick(i64 %v)
  %b = add i64 %a, 1000
  ret i64 %b
}
`
	m := irtext.MustParse("m", src)
	mOrig, _ := ir.CloneModule(m)
	Optimize(m, &Options{Level: 2})
	ir.MustVerify(m)
	// Differential check against unoptimized interpretation.
	for _, v := range []int64{0, 5, 10, 11, 50, -3} {
		ipO, err := interp.New(m, newEnvForTest())
		if err != nil {
			t.Fatal(err)
		}
		got, err := ipO.Run("main", v)
		if err != nil {
			t.Fatal(err)
		}
		ipR, err := interp.New(mOrig, newEnvForTest())
		if err != nil {
			t.Fatal(err)
		}
		want, err := ipR.Run("main", v)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("main(%d) = %d, want %d\n%s", v, got, want, ir.Print(m))
		}
	}
}

func TestConstGlobalLoadFold(t *testing.T) {
	src := `
const @tab : [4 x i8] = bytes"\0a\14\1e\28"
func @get() -> i64 {
entry:
  %p = gep @tab, 2, scale 1
  %v = load i8, %p
  %r = zext i8 %v to i64
  ret i64 %r
}
`
	m := irtext.MustParse("m", src)
	rep := &Report{}
	Optimize(m, &Options{Level: 2, Report: rep})
	ir.MustVerify(m)
	term := m.LookupFunc("get").Blocks[0].Instrs[len(m.LookupFunc("get").Blocks[0].Instrs)-1]
	if term.Op != ir.OpRet || !ir.IsConstEq(term.Operands[0], 30) {
		t.Fatalf("load not folded to 30:\n%s", ir.Print(m))
	}
	rep.Dedup()
	if len(rep.CopyUses) == 0 || rep.CopyUses[0][0] != "tab" {
		t.Fatalf("copy-use not reported: %v", rep.CopyUses)
	}
}

func TestStrengthReduction(t *testing.T) {
	src := `
func @f(%x: i64) -> i64 {
entry:
  %a = mul i64 %x, 8
  %b = udiv i64 %a, 4
  %c = urem i64 %b, 16
  ret i64 %c
}
`
	m := irtext.MustParse("m", src)
	Optimize(m, &Options{Level: 1})
	ir.MustVerify(m)
	ops := map[ir.Op]int{}
	for _, in := range m.LookupFunc("f").Blocks[0].Instrs {
		ops[in.Op]++
	}
	if ops[ir.OpMul] != 0 || ops[ir.OpUDiv] != 0 || ops[ir.OpURem] != 0 {
		t.Fatalf("strength reduction incomplete: %v\n%s", ops, ir.Print(m))
	}
	if ops[ir.OpShl] != 1 || ops[ir.OpLShr] != 1 || ops[ir.OpAnd] != 1 {
		t.Fatalf("expected shl/lshr/and: %v", ops)
	}
}

func TestCmpAddFoldDistortsOperands(t *testing.T) {
	// §2.2: icmp eq (add x, -97), 25 -> icmp eq x, 122. The CmpLog story.
	src := `
func @f(%x: i8) -> i1 {
entry:
  %off = add i8 %x, -97
  %r = icmp eq i8 %off, 25
  ret i1 %r
}
`
	m := irtext.MustParse("m", src)
	Optimize(m, &Options{Level: 1})
	ir.MustVerify(m)
	f := m.LookupFunc("f")
	var cmp *ir.Instr
	for _, in := range f.Blocks[0].Instrs {
		if in.Op == ir.OpICmp {
			cmp = in
		}
	}
	if cmp == nil {
		t.Fatalf("no cmp:\n%s", ir.Print(m))
	}
	if _, isParam := cmp.Operands[0].(*ir.Param); !isParam || !ir.IsConstEq(cmp.Operands[1], 122) {
		t.Fatalf("cmp not folded onto param: %s", ir.FormatInstr(cmp))
	}
}

func TestSimplifyCFGMergesChains(t *testing.T) {
	src := `
func @f(%x: i64) -> i64 {
a:
  %v = add i64 %x, 1
  br b
b:
  %w = add i64 %v, 2
  br c
c:
  ret i64 %w
}
`
	m := irtext.MustParse("m", src)
	Optimize(m, &Options{Level: 1})
	ir.MustVerify(m)
	if n := len(m.LookupFunc("f").Blocks); n != 1 {
		t.Fatalf("blocks = %d, want 1:\n%s", n, ir.Print(m))
	}
}

func TestConstPropResolvesBranches(t *testing.T) {
	src := `
declare func @print_i64(%v: i64) -> void
func @f() -> i64 {
entry:
  %c = icmp sgt i64 5, 3
  condbr %c, yes, no
yes:
  ret i64 1
no:
  call void @print_i64(i64 999)
  ret i64 0
}
`
	m := irtext.MustParse("m", src)
	Optimize(m, &Options{Level: 1})
	ir.MustVerify(m)
	f := m.LookupFunc("f")
	if len(f.Blocks) != 1 {
		t.Fatalf("dead branch survived:\n%s", ir.Print(m))
	}
	term := f.Blocks[0].Term()
	if term.Op != ir.OpRet || !ir.IsConstEq(term.Operands[0], 1) {
		t.Fatalf("wrong fold:\n%s", ir.Print(m))
	}
}

func TestGlobalDCEKeepsAliasTargets(t *testing.T) {
	src := `
func @hidden() -> i64 internal {
entry:
  ret i64 1
}
alias @visible = @hidden
`
	m := irtext.MustParse("m", src)
	Optimize(m, &Options{Level: 2})
	ir.MustVerify(m)
	if m.LookupFunc("hidden") == nil {
		t.Fatal("alias target removed by global DCE")
	}
}

func TestSkipGlobalDCE(t *testing.T) {
	src := `
func @orphan() -> i64 internal noinline {
entry:
  ret i64 1
}
func @main() -> i64 {
entry:
  ret i64 0
}
`
	m := irtext.MustParse("m", src)
	Optimize(m, &Options{Level: 2, SkipGlobalDCE: true})
	if m.LookupFunc("orphan") == nil {
		t.Fatal("SkipGlobalDCE did not keep orphan")
	}
	m2 := irtext.MustParse("m", src)
	Optimize(m2, &Options{Level: 2})
	if m2.LookupFunc("orphan") != nil {
		t.Fatal("global DCE kept orphan")
	}
}

// TestDifferentialRandomPrograms: optimized programs behave identically to
// their unoptimized originals on random inputs.
func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomProgram(rng)
		ir.MustVerify(m)
		orig, _ := ir.CloneModule(m)
		Optimize(m, &Options{Level: 2})
		if err := ir.Verify(m); err != nil {
			t.Fatalf("seed %d: optimized module invalid: %v\n%s", seed, err, ir.Print(m))
		}
		for trial := 0; trial < 10; trial++ {
			args := []int64{rng.Int63n(200) - 100, rng.Int63n(200) - 100}
			gotO, errO := runMain(t, m, args)
			gotR, errR := runMain(t, orig, args)
			if (errO == nil) != (errR == nil) {
				t.Fatalf("seed %d args %v: trap mismatch: opt=%v ref=%v\n--- opt ---\n%s--- ref ---\n%s",
					seed, args, errO, errR, ir.Print(m), ir.Print(orig))
			}
			if errO == nil && gotO != gotR {
				t.Fatalf("seed %d args %v: %d != %d\n--- opt ---\n%s--- ref ---\n%s",
					seed, args, gotO, gotR, ir.Print(m), ir.Print(orig))
			}
		}
	}
}

func runMain(t *testing.T, m *ir.Module, args []int64) (int64, error) {
	t.Helper()
	ip, err := interp.New(m, newEnvForTest())
	if err != nil {
		t.Fatal(err)
	}
	return ip.Run("main", args...)
}

// randomProgram generates a module with a helper (sometimes internal,
// sometimes with a dead parameter) and a main that exercises branches,
// arithmetic, and calls.
func randomProgram(rng *rand.Rand) *ir.Module {
	m := ir.NewModule("rand")
	link := ir.External
	if rng.Intn(2) == 0 {
		link = ir.Internal
	}
	h := ir.NewFunc(m, "helper", &ir.FuncType{Params: []ir.Type{ir.I64, ir.I64}, Ret: ir.I64}, []string{"a", "b"})
	h.Linkage = link
	hb := h.AddBlock("entry")
	b := ir.NewBuilder()
	b.SetBlock(hb)
	var hv ir.Value = h.Params[0]
	if rng.Intn(3) > 0 {
		hv = b.Add(hv, h.Params[1]) // uses b
	} // else b is a dead param
	for i := 0; i < rng.Intn(5); i++ {
		ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpAnd, ir.OpOr}
		hv = b.Bin(ops[rng.Intn(len(ops))], hv, ir.Const(ir.I64, rng.Int63n(64)+1))
	}
	b.Ret(hv)

	main := ir.NewFunc(m, "main", &ir.FuncType{Params: []ir.Type{ir.I64, ir.I64}, Ret: ir.I64}, []string{"x", "y"})
	entry := main.AddBlock("entry")
	thenB := main.AddBlock("then")
	elseB := main.AddBlock("else")
	exit := main.AddBlock("exit")
	b.SetBlock(entry)
	cmp := b.ICmp(ir.Pred(rng.Intn(10)), main.Params[0], ir.Const(ir.I64, rng.Int63n(40)-20))
	b.CondBr(cmp, thenB, elseB)
	b.SetBlock(thenB)
	tv := b.Call(ir.I64, "helper", main.Params[0], main.Params[1])
	b.Br(exit)
	b.SetBlock(elseB)
	ev := b.Mul(main.Params[1], ir.Const(ir.I64, 4))
	b.Br(exit)
	b.SetBlock(exit)
	phi := b.Phi(ir.I64, []ir.Value{tv, ev}, []*ir.Block{thenB, elseB})
	res := b.Add(phi, ir.Const(ir.I64, rng.Int63n(10)))
	b.Ret(res)
	return m
}
