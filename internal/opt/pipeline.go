// Package opt implements the optimization pipeline: a pass manager and the
// passes whose interplay with instrumentation the paper studies.
//
// Two features matter beyond ordinary optimization:
//
//  1. Passes only fire when the symbols they need are visible in the module
//     being compiled. Interprocedural passes (inlining, dead-argument
//     elimination) need callee/caller definitions; instruction combining
//     needs referenced constants. Compiling a fragment that lacks those
//     symbols silently loses the optimization — exactly the effect Odin's
//     partitioner must avoid (paper §2.3, Figure 4).
//
//  2. A trial run records which symbol pairs each interprocedural
//     optimization required ("Bond") and which constants local optimization
//     inspected ("Copy-on-use") into a Report. Odin's partitioner consumes
//     the report to build fragments that preserve every optimization
//     (paper §3.2).
package opt

import (
	"sort"

	"odin/internal/ir"
)

// Report accumulates the optimization-dependency log of a trial run.
type Report struct {
	// Bonds lists symbol pairs that interprocedural optimization must see
	// together (callee/caller for inlining and dead-argument elimination).
	Bonds [][2]string
	// CopyUses lists (constant symbol, using function) pairs local
	// optimization needed; the partitioner clones such constants into the
	// user's fragment.
	CopyUses [][2]string
}

// AddBond records that a and b must be compiled together.
func (r *Report) AddBond(a, b string) {
	if r == nil || a == b {
		return
	}
	r.Bonds = append(r.Bonds, [2]string{a, b})
}

// AddCopyUse records that function user inspected constant c.
func (r *Report) AddCopyUse(c, user string) {
	if r == nil {
		return
	}
	r.CopyUses = append(r.CopyUses, [2]string{c, user})
}

// Dedup sorts and deduplicates the report, making it deterministic.
func (r *Report) Dedup() {
	r.Bonds = dedupPairs(r.Bonds)
	r.CopyUses = dedupPairs(r.CopyUses)
}

func dedupPairs(ps [][2]string) [][2]string {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// Options configures a pipeline run.
type Options struct {
	// Level 0 disables optimization entirely; 1 runs local passes only;
	// 2 (default for experiments) adds interprocedural passes.
	Level int
	// Report, when non-nil, receives the dependency log.
	Report *Report
	// MaxInlineInstrs overrides the inliner size threshold (0 = default).
	MaxInlineInstrs int
	// SkipGlobalDCE keeps unreferenced internal symbols. Odin's fragment
	// recompilations do NOT need it — a member another fragment imports
	// is exported and therefore a global-DCE root — but tools that want
	// to preserve dead internal code (e.g. to instrument it later without
	// a repartition) can set it.
	SkipGlobalDCE bool
}

// Pass is one transformation over a module. Run returns whether anything
// changed.
type Pass interface {
	Name() string
	Run(m *ir.Module, o *Options) bool
}

// localPasses returns the intraprocedural pass set.
func localPasses() []Pass {
	return []Pass{ConstProp{}, InstCombine{}, CSE{}, SimplifyCFG{}, DCE{}}
}

// Optimize runs the full pipeline at o.Level over the module, mimicking an
// O2-style loop: local cleanup, interprocedural transforms, local cleanup,
// global DCE. The module is verified before and after in debug builds via
// the caller; Optimize itself only transforms.
func Optimize(m *ir.Module, o *Options) {
	if o == nil {
		o = &Options{Level: 2}
	}
	if o.Level <= 0 {
		return
	}
	runToFixpoint(m, o, localPasses(), 8)
	if o.Level >= 2 {
		// Fully unroll small constant-trip loops; each round may expose
		// folding that enables further unrolling.
		for i := 0; i < 4; i++ {
			if !(LoopUnroll{}).Run(m, o) {
				break
			}
			runToFixpoint(m, o, localPasses(), 8)
		}
		// Interprocedural round. Inlining exposes local opportunities,
		// so alternate with local cleanup.
		for i := 0; i < 4; i++ {
			changed := Inline{}.Run(m, o)
			changed = DeadArgElim{}.Run(m, o) || changed
			runToFixpoint(m, o, localPasses(), 8)
			if !changed {
				break
			}
		}
		if !o.SkipGlobalDCE {
			GlobalDCE{}.Run(m, o)
		}
	}
}

func runToFixpoint(m *ir.Module, o *Options, passes []Pass, maxIters int) {
	for i := 0; i < maxIters; i++ {
		changed := false
		for _, p := range passes {
			if p.Run(m, o) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}
