// Package opt implements the optimization pipeline: a pass manager and the
// passes whose interplay with instrumentation the paper studies.
//
// Two features matter beyond ordinary optimization:
//
//  1. Passes only fire when the symbols they need are visible in the module
//     being compiled. Interprocedural passes (inlining, dead-argument
//     elimination) need callee/caller definitions; instruction combining
//     needs referenced constants. Compiling a fragment that lacks those
//     symbols silently loses the optimization — exactly the effect Odin's
//     partitioner must avoid (paper §2.3, Figure 4).
//
//  2. A trial run records which symbol pairs each interprocedural
//     optimization required ("Bond") and which constants local optimization
//     inspected ("Copy-on-use") into a Report. Odin's partitioner consumes
//     the report to build fragments that preserve every optimization
//     (paper §3.2).
package opt

import (
	"sort"
	"time"

	"odin/internal/ir"
)

// Report accumulates the optimization-dependency log of a trial run.
type Report struct {
	// Bonds lists symbol pairs that interprocedural optimization must see
	// together (callee/caller for inlining and dead-argument elimination).
	Bonds [][2]string
	// CopyUses lists (constant symbol, using function) pairs local
	// optimization needed; the partitioner clones such constants into the
	// user's fragment.
	CopyUses [][2]string
}

// AddBond records that a and b must be compiled together.
func (r *Report) AddBond(a, b string) {
	if r == nil || a == b {
		return
	}
	r.Bonds = append(r.Bonds, [2]string{a, b})
}

// AddCopyUse records that function user inspected constant c.
func (r *Report) AddCopyUse(c, user string) {
	if r == nil {
		return
	}
	r.CopyUses = append(r.CopyUses, [2]string{c, user})
}

// Dedup sorts and deduplicates the report, making it deterministic.
func (r *Report) Dedup() {
	r.Bonds = dedupPairs(r.Bonds)
	r.CopyUses = dedupPairs(r.CopyUses)
}

func dedupPairs(ps [][2]string) [][2]string {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
	out := ps[:0]
	for i, p := range ps {
		if i == 0 || p != ps[i-1] {
			out = append(out, p)
		}
	}
	return out
}

// Options configures a pipeline run.
type Options struct {
	// Level 0 disables optimization entirely; 1 runs local passes only;
	// 2 (default for experiments) adds interprocedural passes.
	Level int
	// Report, when non-nil, receives the dependency log.
	Report *Report
	// MaxInlineInstrs overrides the inliner size threshold (0 = default).
	MaxInlineInstrs int
	// SkipGlobalDCE keeps unreferenced internal symbols. Odin's fragment
	// recompilations do NOT need it — a member another fragment imports
	// is exported and therefore a global-DCE root — but tools that want
	// to preserve dead internal code (e.g. to instrument it later without
	// a repartition) can set it.
	SkipGlobalDCE bool
	// KeepArgs names functions dead-argument elimination must leave
	// untouched. The engine's function-granular splice path compiles a
	// reduced fragment module in which hash-clean sibling definitions are
	// absent; DAE's address-taken and alias-target gating is module-wide, so
	// the engine passes the set computed over the whole fragment to make the
	// reduced compile take exactly the DAE decisions a whole-fragment
	// compile would.
	KeepArgs map[string]bool
	// Quarantine names passes the pipeline must skip. The rebuild
	// supervisor quarantines a pass for a fragment after it caused that
	// fragment's compile to fail, so later rebuilds degrade around it
	// instead of re-hitting the same fault.
	Quarantine map[string]bool
	// Trace, when non-nil, records the pass currently running. It stays
	// set when a pass panics, which is how the rebuild supervisor
	// attributes a recovered panic to the pass that raised it.
	Trace *PassTrace
	// FaultHook, when non-nil, is called before each pass with site
	// "opt:<pass>". A returned error aborts the pipeline as a *PassError;
	// the faultinject package provides deterministic implementations.
	FaultHook func(site string) error
	// OnPass, when non-nil, is called after each pass that ran (quarantined
	// passes are skipped, not reported) with the pass name, its start time
	// and duration, and whether it changed the module. Pass timing is only
	// taken when OnPass is set. The telemetry tracer uses it to attach
	// per-pass spans to a fragment's opt stage.
	OnPass func(pass string, start time.Time, dur time.Duration, changed bool)
	// VerifyEach enables the strictest verification tier: after every pass
	// that ran, the module is re-verified with ir.VerifyStrict, and a
	// violation aborts the pipeline as a *PassError naming the offending
	// pass, with a bounded before/after IR diff in the error text. This
	// turns a silent miscompile into an attributed, degradable fault that
	// flows through the same ladder and quarantine machinery as injected
	// ones.
	VerifyEach bool
	// OnVerify, when non-nil and VerifyEach is set, is called after each
	// per-pass verification with the pass name, the time the check took,
	// and whether the module verified clean. Telemetry hangs the
	// odin_verify_* families off it.
	OnVerify func(pass string, dur time.Duration, ok bool)

	// passBase and passOff implement cheap per-pass timing: passBase is
	// read once, and each pass boundary is a monotonic offset from it
	// (time.Since costs about half a time.Now on machines without a fast
	// clock path). The end of one pass doubles as the start of the next;
	// see runPass.
	passBase time.Time
	passOff  time.Duration
}

// PassTrace exposes which pass the pipeline is currently running; see
// Options.Trace.
type PassTrace struct{ Pass string }

// PassError attributes a pipeline failure to a named pass.
type PassError struct {
	Pass string
	Err  error
}

func (e *PassError) Error() string { return "opt: " + e.Pass + ": " + e.Err.Error() }

func (e *PassError) Unwrap() error { return e.Err }

// Pass is one transformation over a module. Run returns whether anything
// changed.
type Pass interface {
	Name() string
	Run(m *ir.Module, o *Options) bool
}

// localPasses returns the intraprocedural pass set.
func localPasses() []Pass {
	return []Pass{ConstProp{}, InstCombine{}, CSE{}, SimplifyCFG{}, DCE{}}
}

// Optimize runs the full pipeline at o.Level over the module, mimicking an
// O2-style loop: local cleanup, interprocedural transforms, local cleanup,
// global DCE. The module is verified before and after in debug builds via
// the caller; Optimize itself only transforms. Without a FaultHook the
// pipeline cannot fail; a hook error escaping through this entry point is a
// programming error (fault-injecting callers must use OptimizeChecked).
func Optimize(m *ir.Module, o *Options) {
	if err := OptimizeChecked(m, o); err != nil {
		panic(err)
	}
}

// OptimizeChecked is Optimize with failure surfacing: a FaultHook error
// aborts the pipeline and is returned as a *PassError naming the pass whose
// site raised it. The module may be left partially transformed; callers
// retrying must start from a fresh copy.
func OptimizeChecked(m *ir.Module, o *Options) error {
	if o == nil {
		o = &Options{Level: 2}
	}
	if o.Level <= 0 {
		return nil
	}
	if err := runToFixpoint(m, o, localPasses(), 8); err != nil {
		return err
	}
	if o.Level >= 2 {
		// Fully unroll small constant-trip loops; each round may expose
		// folding that enables further unrolling.
		for i := 0; i < 4; i++ {
			changed, err := runPass(m, o, LoopUnroll{})
			if err != nil {
				return err
			}
			if !changed {
				break
			}
			if err := runToFixpoint(m, o, localPasses(), 8); err != nil {
				return err
			}
		}
		// Interprocedural round. Inlining exposes local opportunities,
		// so alternate with local cleanup.
		for i := 0; i < 4; i++ {
			changed, err := runPass(m, o, Inline{})
			if err != nil {
				return err
			}
			dae, err := runPass(m, o, DeadArgElim{})
			if err != nil {
				return err
			}
			changed = dae || changed
			if err := runToFixpoint(m, o, localPasses(), 8); err != nil {
				return err
			}
			if !changed {
				break
			}
		}
		if !o.SkipGlobalDCE {
			if _, err := runPass(m, o, GlobalDCE{}); err != nil {
				return err
			}
		}
	}
	return nil
}

func runToFixpoint(m *ir.Module, o *Options, passes []Pass, maxIters int) error {
	for i := 0; i < maxIters; i++ {
		changed := false
		for _, p := range passes {
			c, err := runPass(m, o, p)
			if err != nil {
				return err
			}
			if c {
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return nil
}

// runPass executes one pass, honoring quarantine, pass tracing, and fault
// injection. Trace.Pass is deliberately NOT cleared when Run panics: the
// recovering caller reads it to attribute the panic.
func runPass(m *ir.Module, o *Options, p Pass) (bool, error) {
	name := p.Name()
	if o.Quarantine[name] {
		return false, nil
	}
	if o.Trace != nil {
		// Set before the hook, so an injected panic is attributed to the
		// pass whose site raised it, exactly like a panic from Run itself.
		o.Trace.Pass = name
	}
	if o.FaultHook != nil {
		if err := o.FaultHook("opt:" + name); err != nil {
			return false, &PassError{Pass: name, Err: err}
		}
	}
	var before string
	if o.VerifyEach {
		// The pre-pass snapshot feeds the before/after diff when this pass
		// breaks an invariant. Print cost is only paid at the strictest tier.
		before = ir.Print(m)
	}
	var start time.Duration
	if o.OnPass != nil {
		if o.passBase.IsZero() {
			o.passBase = time.Now()
		}
		start = o.passOff
	}
	changed := p.Run(m, o)
	if o.OnPass != nil {
		// One monotonic read per pass: the end offset of this pass is the
		// start offset of the next. The pipeline's own loop control between
		// passes is nanoseconds, so the misattribution is negligible.
		off := time.Since(o.passBase)
		o.OnPass(name, o.passBase.Add(start), off-start, changed)
		o.passOff = off
	}
	if o.VerifyEach {
		// Verify while Trace.Pass is still set, so a verifier crash on
		// badly mangled IR is attributed like a pass panic.
		if err := verifyAfterPass(m, o, name, before); err != nil {
			return changed, err
		}
	}
	if o.Trace != nil {
		o.Trace.Pass = ""
	}
	return changed, nil
}
