package opt

import "odin/internal/ir"

// SimplifyCFG performs the control-flow cleanups the paper lists among the
// "missing/redundant basic blocks" distortions (§2.2): merging single-
// predecessor chains, threading empty forwarding blocks, and folding
// degenerate phis. Post-optimization basic blocks therefore no longer
// correspond to source basic blocks — which is why instrumenting after
// optimization degrades coverage feedback.
type SimplifyCFG struct{}

// Name implements Pass.
func (SimplifyCFG) Name() string { return "simplifycfg" }

// Run implements Pass.
func (SimplifyCFG) Run(m *ir.Module, o *Options) bool {
	changed := false
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		for simplifyFunc(f) {
			changed = true
		}
	}
	return changed
}

func simplifyFunc(f *ir.Func) bool {
	changed := removeUnreachable(f)
	changed = foldSinglePhis(f) || changed
	changed = mergeChains(f) || changed
	changed = threadEmptyBlocks(f) || changed
	return changed
}

// foldSinglePhis replaces phis with a single incoming edge (or identical
// incoming values) by the value itself.
func foldSinglePhis(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := b.Instrs[i]
			if in.Op != ir.OpPhi {
				continue
			}
			v, ok := singlePhiValue(in)
			if !ok || v == in {
				continue
			}
			replaceUses(f, in, v)
			b.RemoveAt(i)
			changed = true
		}
	}
	return changed
}

// mergeChains merges b into its sole successor s when b ends in an
// unconditional branch and s has exactly one predecessor.
func mergeChains(f *ir.Func) bool {
	changed := false
	for {
		preds := f.Preds()
		merged := false
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			s := t.Targets[0]
			if s == b || s == f.Entry() || len(preds[s]) != 1 {
				continue
			}
			// Fold s's phis: single predecessor means single incoming.
			for _, phi := range s.Phis() {
				replaceUses(f, phi, phi.Operands[0])
			}
			// Drop b's terminator and append s's non-phi instructions.
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
			for _, in := range s.Instrs {
				if in.Op == ir.OpPhi {
					continue
				}
				b.Append(in)
			}
			// Successors of s now have predecessor b instead of s.
			for _, ss := range b.Succs() {
				retargetPhis(ss, s, b)
			}
			f.RemoveBlock(s)
			merged = true
			changed = true
			break // preds map is stale; recompute
		}
		if !merged {
			return changed
		}
	}
}

// threadEmptyBlocks redirects predecessors of a block that contains only an
// unconditional branch straight to its destination.
func threadEmptyBlocks(f *ir.Func) bool {
	changed := false
	for {
		preds := f.Preds()
		threaded := false
		for _, e := range f.Blocks {
			if e == f.Entry() || len(e.Instrs) != 1 {
				continue
			}
			t := e.Term()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			d := t.Targets[0]
			if d == e {
				continue
			}
			// Every phi in d must be retargetable: for each pred p of
			// e, d must not already have an incoming from p (it would
			// create a duplicate edge).
			ok := true
			dPhis := d.Phis()
			if len(dPhis) > 0 {
				existing := map[*ir.Block]bool{}
				for _, inc := range dPhis[0].Incoming {
					existing[inc] = true
				}
				for _, p := range preds[e] {
					if existing[p] {
						ok = false
						break
					}
				}
			}
			if !ok || len(preds[e]) == 0 {
				continue
			}
			// Redirect each predecessor's terminator from e to d and
			// duplicate d's phi entries for the new edge.
			for _, p := range preds[e] {
				pt := p.Term()
				for i, tgt := range pt.Targets {
					if tgt == e {
						pt.Targets[i] = d
					}
				}
				for _, phi := range dPhis {
					// The value flowing e->d now flows p->d.
					for i, inc := range phi.Incoming {
						if inc == e {
							phi.Operands = append(phi.Operands, phi.Operands[i])
							phi.Incoming = append(phi.Incoming, p)
							break
						}
					}
				}
			}
			for _, phi := range dPhis {
				removePhiIncomingBlock(phi, e)
			}
			f.RemoveBlock(e)
			threaded = true
			changed = true
			break
		}
		if !threaded {
			return changed
		}
	}
}

func removePhiIncomingBlock(phi *ir.Instr, b *ir.Block) {
	for i, inc := range phi.Incoming {
		if inc == b {
			phi.Incoming = append(phi.Incoming[:i], phi.Incoming[i+1:]...)
			phi.Operands = append(phi.Operands[:i], phi.Operands[i+1:]...)
			return
		}
	}
}
