package opt

import (
	"fmt"
	"strings"
	"time"

	"odin/internal/ir"
)

// verifyAfterPass runs the after-every-pass strict verification tier for one
// pass that just ran. The "verify:<pass>" fault-injection site fires first,
// so robustness tests can seed IR corruption (or plain errors) at exactly
// this point and assert the pipeline attributes them to the right pass. A
// strict-verification violation is returned as a *PassError naming the pass,
// with a bounded before/after IR diff appended for bisection.
func verifyAfterPass(m *ir.Module, o *Options, pass, before string) error {
	if o.FaultHook != nil {
		if err := o.FaultHook("verify:" + pass); err != nil {
			return &PassError{Pass: pass, Err: err}
		}
	}
	start := time.Now()
	verr := ir.VerifyStrict(m)
	if o.OnVerify != nil {
		o.OnVerify(pass, time.Since(start), verr == nil)
	}
	if verr == nil {
		return nil
	}
	return &PassError{
		Pass: pass,
		Err:  fmt.Errorf("%w\n%s", verr, irDiff(before, ir.Print(m))),
	}
}

// irDiffContext bounds the diff on each side of the first divergence; the
// full modules can be large and the error already names the exact defect.
const irDiffContext = 8

// irDiff renders a bounded line diff between the pre-pass and post-pass IR:
// the first divergent region with a few lines of context on either side.
// It is intentionally simple — the verifier error pinpoints the defect; the
// diff exists so a human (or bisecting tool) can see what the pass rewrote.
func irDiff(before, after string) string {
	if before == after {
		return "(pass reported IR unchanged textually)"
	}
	bl := strings.Split(before, "\n")
	al := strings.Split(after, "\n")
	// Common prefix/suffix to isolate the changed region.
	p := 0
	for p < len(bl) && p < len(al) && bl[p] == al[p] {
		p++
	}
	s := 0
	for s < len(bl)-p && s < len(al)-p && bl[len(bl)-1-s] == al[len(al)-1-s] {
		s++
	}
	var sb strings.Builder
	sb.WriteString("pass IR diff (first divergence):\n")
	ctxFrom := p - irDiffContext
	if ctxFrom < 0 {
		ctxFrom = 0
	}
	for _, l := range bl[ctxFrom:p] {
		sb.WriteString("  " + l + "\n")
	}
	writeSide := func(mark string, lines []string) {
		if len(lines) > 2*irDiffContext {
			for _, l := range lines[:irDiffContext] {
				sb.WriteString(mark + " " + l + "\n")
			}
			fmt.Fprintf(&sb, "%s ... (%d lines elided)\n", mark, len(lines)-2*irDiffContext)
			lines = lines[len(lines)-irDiffContext:]
		}
		for _, l := range lines {
			sb.WriteString(mark + " " + l + "\n")
		}
	}
	writeSide("-", bl[p:len(bl)-s])
	writeSide("+", al[p:len(al)-s])
	return strings.TrimRight(sb.String(), "\n")
}
