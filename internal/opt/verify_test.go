package opt

import (
	"errors"
	"strings"
	"testing"
	"time"

	"odin/internal/ir"
	"odin/internal/irtext"
)

// corruptionTestSrc exercises every pass in the level-2 pipeline: a
// foldable branch (constprop, simplifycfg), redundant arithmetic (cse,
// instcombine, dce), a small constant-trip loop (loopunroll), a small
// callee with a dead argument (inline, deadargelim), and an unreferenced
// internal function (globaldce).
const corruptionTestSrc = `
func @callee(%x: i64, %dead: i64) -> i64 internal {
entry:
  %r = mul i64 %x, 3
  ret i64 %r
}

func @unused() -> i64 internal {
entry:
  ret i64 7
}

func @main(%n: i64) -> i64 {
entry:
  %a = add i64 %n, 0
  %b = add i64 %n, 0
  %c = add i64 %a, %b
  %flag = icmp eq i64 1, 1
  condbr %flag, loop_pre, other
loop_pre:
  br loop
loop:
  %i = phi i64 [0, loop_pre], [%i2, loop]
  %acc = phi i64 [%c, loop_pre], [%acc2, loop]
  %acc2 = add i64 %acc, 2
  %i2 = add i64 %i, 1
  %done = icmp sge i64 %i2, 3
  condbr %done, exit, loop
other:
  br exit
exit:
  %r = phi i64 [%acc2, loop], [0, other]
  %call = call i64 @callee(i64 %r, i64 9)
  ret i64 %call
}
`

// pipelinePasses lists every pass the level-2 pipeline can run; the
// seeded-corruption sweep must attribute a violation to each one.
var pipelinePasses = []string{
	"constprop", "instcombine", "cse", "simplifycfg", "dce",
	"loopunroll", "inline", "deadargelim", "globaldce",
}

// corrupt injects a use of a free-floating instruction (an operand not
// defined in the function) into the first defined function's entry block —
// invalid under basic verification, and therefore under the strict tier at
// any point in the pipeline.
func corrupt(m *ir.Module) {
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		dangling := &ir.Instr{Op: ir.OpAdd, Typ: ir.I64, Name: "__dangling",
			Operands: []ir.Value{ir.Const(ir.I64, 1), ir.Const(ir.I64, 1)}}
		bad := &ir.Instr{Op: ir.OpAdd, Typ: ir.I64, Name: "__corrupt",
			Operands: []ir.Value{dangling, dangling}}
		f.Entry().InsertBefore(0, bad)
		return
	}
}

// TestVerifyEachAttributesSeededCorruption seeds IR corruption at each
// verify:<pass> fault site in turn and asserts the every-pass tier catches
// it with exactly that pass named in the *PassError.
func TestVerifyEachAttributesSeededCorruption(t *testing.T) {
	for _, target := range pipelinePasses {
		t.Run(target, func(t *testing.T) {
			m := irtext.MustParse("m", corruptionTestSrc)
			site := "verify:" + target
			fired := false
			err := OptimizeChecked(m, &Options{
				Level:      2,
				VerifyEach: true,
				FaultHook: func(s string) error {
					if s == site && !fired {
						fired = true
						corrupt(m)
					}
					return nil
				},
			})
			if !fired {
				t.Fatalf("pipeline never reached site %s", site)
			}
			if err == nil {
				t.Fatalf("seeded corruption at %s sailed through the pipeline", site)
			}
			var pe *PassError
			if !errors.As(err, &pe) {
				t.Fatalf("error type %T, want *PassError: %v", err, err)
			}
			if pe.Pass != target {
				t.Fatalf("corruption at %s attributed to pass %q", site, pe.Pass)
			}
			var ve *ir.VerifyError
			if !errors.As(err, &ve) {
				t.Fatalf("PassError does not wrap a *ir.VerifyError: %v", err)
			}
			if !strings.Contains(err.Error(), "pass IR diff") {
				t.Fatalf("error lacks the before/after diff:\n%v", err)
			}
		})
	}
}

// TestVerifyEachCleanPipeline asserts the every-pass tier is silent on a
// healthy pipeline and reports every check as clean through OnVerify.
func TestVerifyEachCleanPipeline(t *testing.T) {
	m := irtext.MustParse("m", corruptionTestSrc)
	checks, notOK := 0, 0
	err := OptimizeChecked(m, &Options{
		Level:      2,
		VerifyEach: true,
		OnVerify: func(pass string, dur time.Duration, ok bool) {
			checks++
			if !ok {
				notOK++
			}
		},
	})
	if err != nil {
		t.Fatalf("clean pipeline failed under VerifyEach: %v", err)
	}
	if checks == 0 {
		t.Fatal("OnVerify never fired")
	}
	if notOK != 0 {
		t.Fatalf("%d of %d per-pass checks flagged a healthy pipeline", notOK, checks)
	}
}

// TestVerifyEachMidPipelineUnreachable pins the tolerance that makes the
// every-pass tier usable at all: constprop folds a constant branch and
// leaves its dead target unreachable until simplifycfg runs; the strict
// check after constprop must accept that intermediate state.
func TestVerifyEachMidPipelineUnreachable(t *testing.T) {
	src := `
func @f(%n: i64) -> i64 {
entry:
  %flag = icmp eq i64 1, 1
  condbr %flag, live, dead
live:
  ret i64 %n
dead:
  %x = add i64 %n, 1
  ret i64 %x
}
`
	m := irtext.MustParse("m", src)
	seen := map[string]int{}
	err := OptimizeChecked(m, &Options{
		Level:      1,
		VerifyEach: true,
		OnVerify: func(pass string, _ time.Duration, ok bool) {
			seen[pass]++
			if !ok {
				t.Errorf("pass %s flagged a violation on a healthy pipeline", pass)
			}
		},
	})
	if err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}
	if seen["constprop"] == 0 || seen["simplifycfg"] == 0 {
		t.Fatalf("expected per-pass verification of constprop and simplifycfg, got %v", seen)
	}
}

func TestIRDiff(t *testing.T) {
	before := "a\nb\nc\nd\n"
	after := "a\nb\nX\nd\n"
	d := irDiff(before, after)
	if !strings.Contains(d, "- c") || !strings.Contains(d, "+ X") {
		t.Fatalf("diff missing changed lines:\n%s", d)
	}
	if strings.Contains(d, "- a") || strings.Contains(d, "+ d") {
		t.Fatalf("diff includes unchanged lines as changes:\n%s", d)
	}
	if got := irDiff("same", "same"); !strings.Contains(got, "unchanged") {
		t.Fatalf("identical inputs: %q", got)
	}
}
