package persist

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
)

// Blob layout. Every persisted artifact — cache entries and state snapshots
// alike — is wrapped in a fixed self-describing header so a loader can
// classify any file as valid, corrupt, or skewed without decoding untrusted
// bytes:
//
//	offset  size  field
//	0       8     magic ("ODINART1" for cache entries, "ODINSNP1" for
//	              snapshots — a snapshot can never be mistaken for an entry)
//	8       4     schema version, big-endian uint32
//	12      2     build-ID length n, big-endian uint16
//	14      n     build ID (toolchain + cache-relevant configuration)
//	14+n    8     payload length, big-endian uint64
//	22+n    32    SHA-256 of the payload
//	54+n    ...   payload (gob)
//
// The checksum covers the payload; the header fields are implicitly covered
// because any mutation of them misclassifies the blob (bad magic, skew, or a
// length/checksum mismatch) — there is no header mutation that yields a
// valid-looking blob with a different payload.

// Blob magics.
var (
	MagicEntry    = [8]byte{'O', 'D', 'I', 'N', 'A', 'R', 'T', '1'}
	MagicSnapshot = [8]byte{'O', 'D', 'I', 'N', 'S', 'N', 'P', '1'}
)

const blobFixedHeader = 8 + 4 + 2 // magic + schema + buildID length

// encodeBlob frames payload with the self-describing checksummed header.
func encodeBlob(magic [8]byte, buildID string, payload []byte) []byte {
	if len(buildID) > 0xFFFF {
		buildID = buildID[:0xFFFF]
	}
	buf := make([]byte, 0, blobFixedHeader+len(buildID)+8+sha256.Size+len(payload))
	buf = append(buf, magic[:]...)
	buf = binary.BigEndian.AppendUint32(buf, Schema)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(buildID)))
	buf = append(buf, buildID...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)
	return buf
}

// decodeBlob verifies a blob read from disk and returns its payload.
// Classification: ErrCorrupt for anything torn, truncated, flipped, or
// trailing-garbage; ErrSchemaSkew for a well-formed blob written by a
// different schema version or build ID.
func decodeBlob(data []byte, magic [8]byte, buildID string) ([]byte, error) {
	if len(data) < blobFixedHeader {
		return nil, fmt.Errorf("%w: %d-byte file shorter than header", ErrCorrupt, len(data))
	}
	if !bytes.Equal(data[:8], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:8])
	}
	schema := binary.BigEndian.Uint32(data[8:12])
	idLen := int(binary.BigEndian.Uint16(data[12:14]))
	rest := data[blobFixedHeader:]
	if len(rest) < idLen+8+sha256.Size {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	gotID := string(rest[:idLen])
	rest = rest[idLen:]
	plen := binary.BigEndian.Uint64(rest[:8])
	var sum [sha256.Size]byte
	copy(sum[:], rest[8:8+sha256.Size])
	payload := rest[8+sha256.Size:]
	if uint64(len(payload)) != plen {
		return nil, fmt.Errorf("%w: payload %d bytes, header says %d", ErrCorrupt, len(payload), plen)
	}
	if sha256.Sum256(payload) != sum {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	// Integrity before identity: a schema/build-ID skew verdict is only
	// trustworthy for a blob whose bytes check out.
	if schema != Schema {
		return nil, fmt.Errorf("%w: schema %d, want %d", ErrSchemaSkew, schema, Schema)
	}
	if gotID != buildID {
		return nil, fmt.Errorf("%w: build ID %q, want %q", ErrSchemaSkew, gotID, buildID)
	}
	return payload, nil
}

// tempPattern is the temp-file prefix atomic publishes write under; readers
// and directory scans ignore it, and Open sweeps abandoned ones (kill -9
// between temp write and rename).
const tempPattern = ".tmp-"

// WriteFileAtomic publishes data at path atomically: write to a temp file in
// the destination directory, fsync it, rename over path, then fsync the
// directory so the rename itself survives a crash. A reader (or a crash) can
// observe the old content or the new content, never a prefix.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, tempPattern+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Chmod(perm); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename is durable. Filesystems
// that refuse directory fsync (some network mounts) degrade silently: the
// rename's atomicity still holds, only crash-durability of the very last
// publish is at risk, and a lost entry is just a future cold compile.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// writeBlobAtomic frames and atomically publishes one artifact, returning
// the bytes written.
func writeBlobAtomic(path string, magic [8]byte, buildID string, payload []byte) (int, error) {
	blob := encodeBlob(magic, buildID, payload)
	if err := WriteFileAtomic(path, blob, 0o644); err != nil {
		return 0, err
	}
	return len(blob), nil
}

// readBlob reads and verifies one artifact, returning its payload and the
// bytes read. A missing file returns (nil, 0, nil): the ordinary miss.
func readBlob(path string, magic [8]byte, buildID string) ([]byte, int, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, err
	}
	payload, err := decodeBlob(data, magic, buildID)
	if err != nil {
		return nil, len(data), err
	}
	return payload, len(data), nil
}
