package persist

import (
	"encoding/binary"
	"fmt"
	"math"

	"odin/internal/ir"
	"odin/internal/mir"
	"odin/internal/obj"
)

// Entry payloads use a hand-rolled varint codec instead of encoding/gob:
// entries are decoded on the warm-start hot path (one per fragment, before
// the engine can serve its first executable), and gob's reflective setup
// cost dominated warm loads. The layout is a flat field-order walk of Entry
// and obj.Object — the same explicit-field discipline as the blob header.
// Bumping any struct here means bumping Schema; there is no tag-based
// evolution, by design: skewed payloads are evicted and recompiled, never
// migrated.
//
// Decoding is corruption-tolerant: every length is bounds-checked against
// the remaining input before allocation, and any violation returns
// ErrCorrupt (never a panic or an over-allocation), so a bit-flipped count
// degrades exactly like a bit-flipped checksum.

// entryCodecVersion guards the payload layout inside the schema-stamped
// blob; it changes together with Schema but catches encoder/decoder drift
// within a development cycle.
const entryCodecVersion = 1

type encoder struct{ buf []byte }

func (e *encoder) u64(v uint64) { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *encoder) i64(v int64)  { e.buf = binary.AppendVarint(e.buf, v) }
func (e *encoder) byte(b byte)  { e.buf = append(e.buf, b) }
func (e *encoder) bool(b bool)  { e.buf = append(e.buf, boolByte(b)) }
func (e *encoder) str(s string) { e.u64(uint64(len(s))); e.buf = append(e.buf, s...) }
func (e *encoder) bytes(b []byte) {
	e.u64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *decoder) u64() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) i64() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated byte")
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) bool() bool { return d.byte() != 0 }

// count reads a collection length and bounds it by the bytes remaining
// (each element costs at least one byte), so a corrupt count can never
// drive an allocation past the payload size.
func (d *decoder) count() int {
	v := d.u64()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.buf)-d.off) {
		d.fail("length exceeds payload")
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) bytesOrNil() []byte {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}

// intFrom converts a decoded varint to int, rejecting values that do not
// round-trip (a corrupt payload on 32-bit platforms).
func (d *decoder) int() int {
	v := d.i64()
	if int64(int(v)) != v || v > math.MaxInt32 || v < math.MinInt32 {
		d.fail("int out of range")
		return 0
	}
	return int(v)
}

func encodeInst(e *encoder, in *mir.Inst) {
	e.byte(byte(in.Op))
	e.byte(byte(in.Rd))
	e.byte(byte(in.Rs1))
	e.byte(byte(in.Rs2))
	e.i64(in.Imm)
	e.i64(int64(in.ALUOp))
	e.i64(int64(in.Pred))
	e.i64(int64(in.Width))
	e.bool(in.SignExt)
	e.i64(in.Size)
	e.str(in.Sym)
	e.i64(int64(in.Target))
	e.i64(int64(in.FuncIdx))
	e.i64(in.ProbeAddr)
}

func decodeInst(d *decoder, in *mir.Inst) {
	in.Op = mir.Op(d.byte())
	in.Rd = mir.Reg(d.byte())
	in.Rs1 = mir.Reg(d.byte())
	in.Rs2 = mir.Reg(d.byte())
	in.Imm = d.i64()
	in.ALUOp = ir.Op(d.int())
	in.Pred = ir.Pred(d.int())
	in.Width = ir.ScalarType(d.int())
	in.SignExt = d.bool()
	in.Size = d.i64()
	in.Sym = d.str()
	in.Target = d.int()
	in.FuncIdx = d.int()
	in.ProbeAddr = d.i64()
}

func encodeObject(e *encoder, o *obj.Object) {
	e.str(o.Name)
	e.u64(uint64(len(o.Funcs)))
	for i := range o.Funcs {
		f := &o.Funcs[i]
		e.str(f.Name)
		e.byte(byte(f.Linkage))
		e.i64(int64(f.NumBlocks))
		e.u64(uint64(len(f.BlockStarts)))
		for _, bs := range f.BlockStarts {
			e.i64(int64(bs))
		}
		e.u64(uint64(len(f.Code)))
		for j := range f.Code {
			encodeInst(e, &f.Code[j])
		}
	}
	e.u64(uint64(len(o.Datas)))
	for i := range o.Datas {
		ds := &o.Datas[i]
		e.str(ds.Name)
		e.byte(byte(ds.Linkage))
		e.i64(ds.Size)
		e.bytes(ds.Init)
		e.bool(ds.Const)
	}
	e.u64(uint64(len(o.Aliases)))
	for i := range o.Aliases {
		a := &o.Aliases[i]
		e.str(a.Name)
		e.str(a.Target)
		e.byte(byte(a.Linkage))
	}
	e.u64(uint64(len(o.Imports)))
	for _, im := range o.Imports {
		e.str(im)
	}
}

func decodeObject(d *decoder) *obj.Object {
	o := &obj.Object{Name: d.str()}
	nf := d.count()
	if d.err != nil {
		return nil
	}
	o.Funcs = make([]obj.FuncSym, nf)
	for i := 0; i < nf && d.err == nil; i++ {
		f := &o.Funcs[i]
		f.Name = d.str()
		f.Linkage = mir.Linkage(d.byte())
		f.NumBlocks = d.int()
		nb := d.count()
		if d.err != nil {
			return nil
		}
		if nb > 0 {
			f.BlockStarts = make([]int, nb)
			for j := 0; j < nb; j++ {
				f.BlockStarts[j] = d.int()
			}
		}
		nc := d.count()
		if d.err != nil {
			return nil
		}
		f.Code = make([]mir.Inst, nc)
		for j := 0; j < nc && d.err == nil; j++ {
			decodeInst(d, &f.Code[j])
		}
	}
	nd := d.count()
	if d.err != nil {
		return nil
	}
	if nd > 0 {
		o.Datas = make([]obj.DataSym, nd)
		for i := 0; i < nd && d.err == nil; i++ {
			ds := &o.Datas[i]
			ds.Name = d.str()
			ds.Linkage = mir.Linkage(d.byte())
			ds.Size = d.i64()
			ds.Init = d.bytesOrNil()
			ds.Const = d.bool()
		}
	}
	na := d.count()
	if d.err != nil {
		return nil
	}
	if na > 0 {
		o.Aliases = make([]obj.AliasSym, na)
		for i := 0; i < na && d.err == nil; i++ {
			a := &o.Aliases[i]
			a.Name = d.str()
			a.Target = d.str()
			a.Linkage = mir.Linkage(d.byte())
		}
	}
	ni := d.count()
	if d.err != nil {
		return nil
	}
	if ni > 0 {
		o.Imports = make([]string, ni)
		for i := 0; i < ni; i++ {
			o.Imports[i] = d.str()
		}
	}
	if d.err != nil {
		return nil
	}
	return o
}

// encodeEntry serializes an entry into a fresh payload buffer.
func encodeEntry(ent *Entry) []byte {
	e := &encoder{buf: make([]byte, 0, 256+ent.Object.CodeSize()*8)}
	e.byte(entryCodecVersion)
	e.u64(ent.Key)
	e.i64(int64(ent.Level))
	e.u64(uint64(len(ent.FuncHashes)))
	// Map order does not matter for decoding (it rebuilds a map), and the
	// payload is checksummed after encoding, so no sort is needed here.
	for name, h := range ent.FuncHashes {
		e.str(name)
		e.u64(h)
	}
	encodeObject(e, ent.Object)
	return e.buf
}

// decodeEntry parses a payload produced by encodeEntry. Any structural
// violation returns ErrCorrupt.
func decodeEntry(payload []byte) (*Entry, error) {
	d := &decoder{buf: payload}
	if v := d.byte(); d.err == nil && v != entryCodecVersion {
		return nil, fmt.Errorf("%w: entry codec version %d, want %d", ErrSchemaSkew, v, entryCodecVersion)
	}
	ent := &Entry{
		Key:   d.u64(),
		Level: d.int(),
	}
	nh := d.count()
	if d.err != nil {
		return nil, d.err
	}
	if nh > 0 {
		ent.FuncHashes = make(map[string]uint64, nh)
		for i := 0; i < nh && d.err == nil; i++ {
			name := d.str()
			ent.FuncHashes[name] = d.u64()
		}
	}
	ent.Object = decodeObject(d)
	if d.err != nil {
		return nil, d.err
	}
	if ent.Object == nil {
		return nil, fmt.Errorf("%w: entry without object", ErrCorrupt)
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return ent, nil
}

// encodeState serializes an engine state snapshot — same codec, same
// rationale as entries: the snapshot is decoded inside core.New on every
// warm restart, where gob's reflective setup cost was measurable.
func encodeState(st *EngineState) []byte {
	e := &encoder{buf: make([]byte, 0, 512)}
	e.byte(entryCodecVersion)
	e.u64(st.ModuleHash)
	e.str(st.Variant)
	e.i64(int64(st.OptLevel))
	e.i64(int64(st.VerifyTier))
	e.i64(int64(st.Fragments))
	e.u64(uint64(len(st.Hashes)))
	for id, h := range st.Hashes {
		e.i64(int64(id))
		e.u64(h)
	}
	e.u64(uint64(len(st.FuncMeta)))
	for id, fm := range st.FuncMeta {
		e.i64(int64(id))
		e.i64(int64(fm.Level))
		e.u64(uint64(len(fm.FuncHashes)))
		for name, h := range fm.FuncHashes {
			e.str(name)
			e.u64(h)
		}
	}
	e.u64(uint64(len(st.Quarantine)))
	for id, passes := range st.Quarantine {
		e.i64(int64(id))
		e.u64(uint64(len(passes)))
		for _, p := range passes {
			e.str(p)
		}
	}
	e.u64(uint64(len(st.Deferred)))
	for _, id := range st.Deferred {
		e.i64(int64(id))
	}
	e.bool(st.Survey != nil)
	if s := st.Survey; s != nil {
		e.u64(uint64(len(s.Cat)))
		for name, cat := range s.Cat {
			e.str(name)
			e.i64(int64(cat))
		}
		encodePairs(e, s.BondPairs)
		encodePairs(e, s.InnatePairs)
		e.u64(uint64(len(s.CopyUsers)))
		for name, users := range s.CopyUsers {
			e.str(name)
			e.u64(uint64(len(users)))
			for _, u := range users {
				e.str(u)
			}
		}
	}
	e.u64(uint64(len(st.VerifiedFuncs)))
	for name, h := range st.VerifiedFuncs {
		e.str(name)
		e.u64(h)
	}
	e.bool(st.Supervisor != nil)
	if s := st.Supervisor; s != nil {
		e.i64(int64(s.Breaker))
		e.i64(int64(s.ConsecFails))
		e.i64(s.BackoffNS)
		e.u64(uint64(len(s.Quarantined)))
		for id, msg := range s.Quarantined {
			e.i64(int64(id))
			e.str(msg)
		}
	}
	return e.buf
}

func encodePairs(e *encoder, pairs [][2]string) {
	e.u64(uint64(len(pairs)))
	for _, p := range pairs {
		e.str(p[0])
		e.str(p[1])
	}
}

// decodeState parses a payload produced by encodeState; any structural
// violation returns ErrCorrupt.
func decodeState(payload []byte) (*EngineState, error) {
	d := &decoder{buf: payload}
	if v := d.byte(); d.err == nil && v != entryCodecVersion {
		return nil, fmt.Errorf("%w: state codec version %d, want %d", ErrSchemaSkew, v, entryCodecVersion)
	}
	st := &EngineState{
		ModuleHash: d.u64(),
		Variant:    d.str(),
		OptLevel:   d.int(),
		VerifyTier: d.int(),
		Fragments:  d.int(),
	}
	if n := d.count(); d.err == nil && n > 0 {
		st.Hashes = make(map[int]uint64, n)
		for i := 0; i < n && d.err == nil; i++ {
			id := d.int()
			st.Hashes[id] = d.u64()
		}
	}
	if n := d.count(); d.err == nil && n > 0 {
		st.FuncMeta = make(map[int]FuncMeta, n)
		for i := 0; i < n && d.err == nil; i++ {
			id := d.int()
			fm := FuncMeta{Level: d.int()}
			if nh := d.count(); d.err == nil && nh > 0 {
				fm.FuncHashes = make(map[string]uint64, nh)
				for j := 0; j < nh && d.err == nil; j++ {
					name := d.str()
					fm.FuncHashes[name] = d.u64()
				}
			}
			st.FuncMeta[id] = fm
		}
	}
	if n := d.count(); d.err == nil && n > 0 {
		st.Quarantine = make(map[int][]string, n)
		for i := 0; i < n && d.err == nil; i++ {
			id := d.int()
			np := d.count()
			passes := make([]string, 0, np)
			for j := 0; j < np && d.err == nil; j++ {
				passes = append(passes, d.str())
			}
			st.Quarantine[id] = passes
		}
	}
	if n := d.count(); d.err == nil && n > 0 {
		st.Deferred = make([]int, 0, n)
		for i := 0; i < n && d.err == nil; i++ {
			st.Deferred = append(st.Deferred, d.int())
		}
	}
	if d.bool() && d.err == nil {
		s := &SurveyState{}
		if n := d.count(); d.err == nil {
			s.Cat = make(map[string]int, n)
			for i := 0; i < n && d.err == nil; i++ {
				name := d.str()
				s.Cat[name] = d.int()
			}
		}
		s.BondPairs = decodePairs(d)
		s.InnatePairs = decodePairs(d)
		if n := d.count(); d.err == nil && n > 0 {
			s.CopyUsers = make(map[string][]string, n)
			for i := 0; i < n && d.err == nil; i++ {
				name := d.str()
				nu := d.count()
				users := make([]string, 0, nu)
				for j := 0; j < nu && d.err == nil; j++ {
					users = append(users, d.str())
				}
				s.CopyUsers[name] = users
			}
		}
		st.Survey = s
	}
	if n := d.count(); d.err == nil && n > 0 {
		st.VerifiedFuncs = make(map[string]uint64, n)
		for i := 0; i < n && d.err == nil; i++ {
			name := d.str()
			st.VerifiedFuncs[name] = d.u64()
		}
	}
	if d.bool() && d.err == nil {
		s := &SupervisorState{
			Breaker:     d.int(),
			ConsecFails: d.int(),
			BackoffNS:   d.i64(),
		}
		if n := d.count(); d.err == nil && n > 0 {
			s.Quarantined = make(map[int]string, n)
			for i := 0; i < n && d.err == nil; i++ {
				id := d.int()
				s.Quarantined[id] = d.str()
			}
		}
		st.Supervisor = s
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return st, nil
}

func decodePairs(d *decoder) [][2]string {
	n := d.count()
	if d.err != nil || n == 0 {
		return nil
	}
	pairs := make([][2]string, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		a := d.str()
		b := d.str()
		pairs = append(pairs, [2]string{a, b})
	}
	return pairs
}
