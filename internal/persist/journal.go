package persist

import (
	"encoding/binary"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// The journal is the store's metadata of record: an append-only sequence of
// fixed-size self-checksummed records, one per publish or eviction. Its only
// jobs are a fast index at Open (no directory walk on the hot path) and
// byte accounting; the entries themselves are the source of truth, so the
// journal can ALWAYS be discarded and rebuilt from a directory scan.
//
// Kill-9 tolerance: each record carries a CRC32 over its body, appended with
// a single write. Replay stops at the first record that is short or fails
// its checksum — a torn tail from a crash mid-append — and the writer
// truncates the tail away before appending again. Records after a torn one
// are unreachable by construction (appends are sequential), so stopping is
// lossless up to the crash point, and any entry the lost records described
// is rediscovered by the fallback scan or simply re-published.

// Journal record: [op 1][key 8][size 8][crc 4] = 21 bytes. crc covers the
// first 17 bytes.
const (
	journalRecSize = 21

	journalOpPut = byte('p')
	journalOpDel = byte('d')
)

type journalRec struct {
	op   byte
	key  uint64
	size int64
}

func encodeJournalRec(r journalRec) [journalRecSize]byte {
	var b [journalRecSize]byte
	b[0] = r.op
	binary.BigEndian.PutUint64(b[1:9], r.key)
	binary.BigEndian.PutUint64(b[9:17], uint64(r.size))
	binary.BigEndian.PutUint32(b[17:21], crc32.ChecksumIEEE(b[:17]))
	return b
}

func decodeJournalRec(b []byte) (journalRec, bool) {
	if len(b) < journalRecSize {
		return journalRec{}, false
	}
	if crc32.ChecksumIEEE(b[:17]) != binary.BigEndian.Uint32(b[17:21]) {
		return journalRec{}, false
	}
	op := b[0]
	if op != journalOpPut && op != journalOpDel {
		return journalRec{}, false
	}
	return journalRec{
		op:   op,
		key:  binary.BigEndian.Uint64(b[1:9]),
		size: int64(binary.BigEndian.Uint64(b[9:17])),
	}, true
}

// replayJournal reads the journal and folds its records into an index of
// live keys (key → entry size). It returns the byte offset of the last good
// record's end; anything past it is a torn tail the writer may truncate.
// A missing journal returns an empty index at offset 0.
func replayJournal(path string) (index map[uint64]int64, goodLen int64, err error) {
	index = map[uint64]int64{}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return index, 0, nil
		}
		return nil, 0, err
	}
	off := 0
	for off+journalRecSize <= len(data) {
		rec, ok := decodeJournalRec(data[off : off+journalRecSize])
		if !ok {
			break // torn or corrupt tail: trust nothing past it
		}
		switch rec.op {
		case journalOpPut:
			index[rec.key] = rec.size
		case journalOpDel:
			delete(index, rec.key)
		}
		off += journalRecSize
	}
	return index, int64(off), nil
}

// openJournalForAppend opens the journal truncated to its last good record,
// ready for appends.
func openJournalForAppend(path string, goodLen int64) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if fi, err := f.Stat(); err == nil && fi.Size() != goodLen {
		if err := f.Truncate(goodLen); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// appendJournal appends one record with a single write. Journal appends are
// deliberately not fsynced per record: losing the last few records to a
// crash costs a directory-scan rediscovery (or a redundant re-publish), not
// correctness, and per-record fsync would put a disk flush on the commit
// path of every fragment.
func appendJournal(f *os.File, r journalRec) error {
	if f == nil {
		return nil
	}
	b := encodeJournalRec(r)
	_, err := f.Write(b[:])
	return err
}

// scanObjects rebuilds the index from the sharded entry layout — the
// recovery path when the journal is unreadable or out of sync with reality.
// Sizes come from file metadata; entry integrity is still verified per-load.
func scanObjects(dir string) map[uint64]int64 {
	index := map[uint64]int64{}
	shards, err := os.ReadDir(dir)
	if err != nil {
		return index
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if !strings.HasSuffix(name, entrySuffix) || strings.HasPrefix(name, tempPattern) {
				continue
			}
			key, ok := parseEntryName(name)
			if !ok {
				continue
			}
			size := int64(0)
			if fi, err := f.Info(); err == nil {
				size = fi.Size()
			}
			index[key] = size
		}
	}
	return index
}

// sweepTemps removes abandoned temp files (kill -9 between temp write and
// rename) under the objects tree. Only the writer calls it.
func sweepTemps(dir string) {
	shards, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, sh := range shards {
		if !sh.IsDir() {
			continue
		}
		shDir := filepath.Join(dir, sh.Name())
		files, err := os.ReadDir(shDir)
		if err != nil {
			continue
		}
		for _, f := range files {
			if strings.HasPrefix(f.Name(), tempPattern) {
				os.Remove(filepath.Join(shDir, f.Name()))
			}
		}
	}
}
