package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
)

// shardNameRE restricts shard names to path-safe tokens so a shard name can
// never escape the data root or collide with the store's own files.
var shardNameRE = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$`)

// ShardPaths is the on-disk location of one engine shard under a shared
// data root: a private cache directory for the object store and a private
// snapshot file for engine state, so shards warm-start independently and a
// corrupt shard can be wiped without touching its neighbours.
type ShardPaths struct {
	// CacheDir is the shard's persistent object store (core.Options.CacheDir).
	CacheDir string
	// SnapshotPath is the shard's engine-state snapshot
	// (core.Options.SnapshotPath).
	SnapshotPath string
	// JournalPath is the shard's replayable tenant-probe journal (an
	// append-only Log): the record the serve layer replays to reconstruct
	// probe state on an engine restart or hot-spare promotion.
	JournalPath string
}

// ShardLayout maps (root, shard) to that shard's cache directory, snapshot
// path, and probe journal, creating the directories. The layout is
//
//	root/shards/<name>/cache/       object store
//	root/shards/<name>/state.json   engine snapshot
//	root/shards/<name>/journal.log  tenant-probe journal
//
// Shard names must be path-safe ([A-Za-z0-9_.-], 64 chars max, not starting
// with a separator-adjacent character); anything else is rejected rather
// than sanitized so two distinct configured names can never alias one
// directory.
func ShardLayout(root, shard string) (ShardPaths, error) {
	if !shardNameRE.MatchString(shard) {
		return ShardPaths{}, fmt.Errorf("persist: invalid shard name %q", shard)
	}
	dir := filepath.Join(root, "shards", shard)
	cache := filepath.Join(dir, "cache")
	if err := os.MkdirAll(cache, 0o755); err != nil {
		return ShardPaths{}, fmt.Errorf("persist: shard layout: %w", err)
	}
	return ShardPaths{
		CacheDir:     cache,
		SnapshotPath: filepath.Join(dir, "state.json"),
		JournalPath:  filepath.Join(dir, "journal.log"),
	}, nil
}

// ListShards returns the shard names present under root, in lexical order.
// A root with no shards directory yields an empty list, not an error.
func ListShards(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, "shards"))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("persist: list shards: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() && shardNameRE.MatchString(e.Name()) {
			names = append(names, e.Name())
		}
	}
	return names, nil
}
