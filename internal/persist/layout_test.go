package persist

import (
	"path/filepath"
	"testing"
)

func TestShardLayout(t *testing.T) {
	root := t.TempDir()
	a, err := ShardLayout(root, "alpha")
	if err != nil {
		t.Fatalf("ShardLayout alpha: %v", err)
	}
	b, err := ShardLayout(root, "beta")
	if err != nil {
		t.Fatalf("ShardLayout beta: %v", err)
	}
	if a.CacheDir == b.CacheDir || a.SnapshotPath == b.SnapshotPath {
		t.Fatalf("shards must not alias: %+v vs %+v", a, b)
	}
	if want := filepath.Join(root, "shards", "alpha", "cache"); a.CacheDir != want {
		t.Errorf("CacheDir = %q, want %q", a.CacheDir, want)
	}

	names, err := ListShards(root)
	if err != nil {
		t.Fatalf("ListShards: %v", err)
	}
	if len(names) != 2 || names[0] != "alpha" || names[1] != "beta" {
		t.Errorf("ListShards = %v, want [alpha beta]", names)
	}

	for _, bad := range []string{"", "..", "a/b", "a\\b", ".hidden/../x", "-lead"} {
		if _, err := ShardLayout(root, bad); err == nil {
			t.Errorf("ShardLayout(%q) should reject", bad)
		}
	}

	if names, err := ListShards(t.TempDir()); err != nil || names != nil {
		t.Errorf("empty root: got %v, %v", names, err)
	}
}
