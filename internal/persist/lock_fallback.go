//go:build !unix

package persist

import "os"

// acquireWriterLock on platforms without flock degrades to best-effort:
// the lock file is created but confers no exclusion. Single-writer safety
// then rests on deployment discipline; the verify-or-degrade load path still
// protects readers from any torn artifact a racing writer could produce.
func acquireWriterLock(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
}

func releaseWriterLock(f *os.File) {
	if f != nil {
		f.Close()
	}
}
