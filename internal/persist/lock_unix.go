//go:build unix

package persist

import (
	"os"
	"syscall"
)

// acquireWriterLock takes the cache directory's exclusive writer lock
// (flock on <dir>/lock) without blocking. It returns the held lock file, or
// (nil, nil) when another process holds it — the caller degrades to
// read-only. flock locks die with the process, so a kill -9 writer never
// leaves the directory permanently locked.
//
// Readers take no lock at all: entries are immutable once published (atomic
// rename), and an eviction unlinks a name while any open read descriptor
// stays valid, so a reader can never observe a half-written or half-deleted
// entry.
func acquireWriterLock(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if err == syscall.EWOULDBLOCK || err == syscall.EAGAIN {
			return nil, nil
		}
		return nil, err
	}
	return f, nil
}

// releaseWriterLock drops the lock; closing the descriptor releases flock.
func releaseWriterLock(f *os.File) {
	if f != nil {
		syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}
}
