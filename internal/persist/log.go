package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// Log is a generic append-only record log with the store journal's
// crash-tolerance discipline, for callers that need a replayable sequence of
// opaque payloads (the serve layer's tenant-probe journal rides on it). Each
// record is length-prefixed and self-checksummed and is appended with a
// single write; replay stops at the first short or checksum-failing record —
// a torn tail from a crash mid-append — and the writer truncates the tail
// away before appending again. Like the store journal, appends are not
// fsynced per record: losing the final records of a crash costs replaying a
// slightly older state, never reading a corrupt one.
//
// Record framing: [len 4][crc 4][payload len] with crc over the payload.

const (
	logHeaderSize = 8
	// logMaxRecord bounds one record so a corrupt length prefix reads as a
	// torn tail instead of a giant allocation.
	logMaxRecord = 16 << 20
)

// Log errors.
var errLogClosed = fmt.Errorf("persist: log closed")

// Log is the writer handle. Concurrency-safe; construct with OpenLog.
type Log struct {
	mu     sync.Mutex
	f      *os.File
	recs   int
	hook   func(site string) error
	closed bool
}

// Fault-injection sites for the generic log (persist:* convention).
const (
	SiteLogOpen   = "persist:log-open"
	SiteLogAppend = "persist:log-append"
)

// decodeLogStream walks records from data, returning the payloads and the
// offset of the last good record's end.
func decodeLogStream(data []byte) (recs [][]byte, goodLen int64) {
	off := 0
	for off+logHeaderSize <= len(data) {
		n := int(binary.BigEndian.Uint32(data[off : off+4]))
		if n < 0 || n > logMaxRecord || off+logHeaderSize+n > len(data) {
			break
		}
		payload := data[off+logHeaderSize : off+logHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(data[off+4:off+8]) {
			break
		}
		recs = append(recs, append([]byte(nil), payload...))
		off += logHeaderSize + n
	}
	return recs, int64(off)
}

// ReadLog replays a log read-only and returns its record payloads in append
// order. A missing file yields no records and no error; a torn tail is
// silently dropped. Read-only observers (hot-spare replicas) use this while
// the writer keeps appending.
func ReadLog(path string, opts Options) ([][]byte, error) {
	if err := fault(opts.FaultHook, SiteLogOpen); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: read log: %w", err)
	}
	recs, _ := decodeLogStream(data)
	return recs, nil
}

// OpenLog opens (creating if absent) a log for appending, replays its
// existing records, and truncates any torn tail. The returned records are in
// append order.
func OpenLog(path string, opts Options) (*Log, [][]byte, error) {
	if err := fault(opts.FaultHook, SiteLogOpen); err != nil {
		return nil, nil, err
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("persist: open log: %w", err)
	}
	recs, goodLen := decodeLogStream(data)
	f, err := openJournalForAppend(path, goodLen)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: open log: %w", err)
	}
	return &Log{f: f, recs: len(recs), hook: opts.FaultHook}, recs, nil
}

// Append writes one record with a single write syscall.
func (l *Log) Append(payload []byte) error {
	if len(payload) > logMaxRecord {
		return fmt.Errorf("persist: log record too large (%d bytes)", len(payload))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errLogClosed
	}
	if err := fault(l.hook, SiteLogAppend); err != nil {
		return err
	}
	buf := make([]byte, logHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[logHeaderSize:], payload)
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("persist: log append: %w", err)
	}
	l.recs++
	return nil
}

// Records returns how many records the log holds (replayed + appended).
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recs
}

// Close syncs and closes the log file. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	l.f.Sync()
	return l.f.Close()
}
