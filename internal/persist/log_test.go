package persist

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestLogRoundTripAndTornTail pins the generic log's crash contract: records
// replay in append order across reopen, a torn tail (half-written record) is
// dropped and truncated away, and appends after recovery land cleanly.
func TestLogRoundTripAndTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "probe.log")
	l, recs, err := OpenLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a record header with no payload.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0, 0, 0, 99, 1, 2}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Read-only replay sees exactly the good records.
	got, err := ReadLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 || string(got[0]) != "rec-0" || string(got[4]) != "rec-4" {
		t.Fatalf("replay after torn tail = %d records (%q...)", len(got), got)
	}

	// Reopen for append: tail truncated, new records land after the old.
	l, recs, err = OpenLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("reopen replayed %d records, want 5", len(recs))
	}
	if err := l.Append([]byte("rec-5")); err != nil {
		t.Fatal(err)
	}
	if n := l.Records(); n != 6 {
		t.Fatalf("Records() = %d, want 6", n)
	}
	l.Close()
	got, err = ReadLog(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 6 || string(got[5]) != "rec-5" {
		t.Fatalf("final replay = %d records", len(got))
	}

	// A missing log is empty, not an error.
	if got, err := ReadLog(filepath.Join(t.TempDir(), "absent.log"), Options{}); err != nil || len(got) != 0 {
		t.Fatalf("missing log: %v / %d records", err, len(got))
	}
}

// TestLogFaultSites asserts the persist:log-* faultinject sites gate opens
// and appends like every other persist site.
func TestLogFaultSites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "probe.log")
	boom := fmt.Errorf("injected")
	hook := func(site string) error {
		if site == SiteLogAppend {
			return boom
		}
		return nil
	}
	l, _, err := OpenLog(path, Options{FaultHook: hook})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); err == nil {
		t.Fatal("append survived injected fault")
	}
	l.Close()
	if _, _, err := OpenLog(path, Options{FaultHook: func(string) error { return boom }}); err == nil {
		t.Fatal("open survived injected fault")
	}
}
