// Package persist is the disk-backed tier of Odin's compilation caches: a
// crash-safe artifact store for compiled fragment objects plus engine state
// snapshots, so a restarted (or crashed, or redeployed) engine warm-starts
// instead of paying a whole-program cold rebuild.
//
// Robustness contract — verify-or-degrade. A persistent cache that can serve
// a torn, truncated, bit-flipped, or version-skewed entry is strictly worse
// than no cache at all, so every load path here verifies before it trusts:
//
//   - Every on-disk artifact is a self-describing blob: magic, schema
//     version, toolchain/build ID, payload length, and a SHA-256 checksum
//     over the payload. Any mismatch classifies as corruption or version
//     skew — never a decode of untrusted bytes.
//   - Entries are published atomically: payload written to a temp file in
//     the target directory, fsynced, then renamed into a sharded
//     content-addressed layout (objects/<xx>/<key>.obj). A reader can
//     observe an entry fully or not at all; kill -9 between temp write and
//     rename leaves only an ignorable temp file.
//   - The journal is append-only with per-record checksums and tolerates a
//     torn tail (kill -9 mid-append): replay stops at the first bad record
//     and the writer truncates the tail away. A journal corrupted beyond
//     repair is rebuilt from a directory scan, never trusted.
//   - Corrupt or skewed entries are evicted on detection (when the store
//     holds the writer lock) and counted on the odin_persist_corrupt_evicted
//     metric; the caller sees a plain miss and compiles cold.
//   - Single-writer/multi-reader: one engine holds an exclusive flock on the
//     cache directory and may publish and evict; further engines sharing the
//     directory degrade to read-only stores (loads still hit). Entries are
//     immutable once published, so readers need no lock of their own.
//
// Every failure mode — missing entry, checksum mismatch, short read,
// incompatible schema, locked directory, full disk, injected I/O fault via
// the persist:* faultinject sites — surfaces as a counted miss or fallback,
// never an error the compilation pipeline has to handle.
package persist

import (
	"errors"
	"fmt"

	"odin/internal/telemetry"
)

// Schema is the on-disk format version, stamped into every blob header.
// Bump it when the blob layout, the journal record format, or a payload
// shape (the entry codec or the gob-encoded snapshot structs) changes
// incompatibly; skewed entries are evicted on load.
//
// History: 1 = gob entry payloads; 2 = varint entry codec (codec.go) and
// snapshot survey/verification carryover.
const Schema uint32 = 2

// Fault-injection site names (Options.FaultHook). They follow the pipeline's
// "<stage>:<point>" convention so a faultinject.Rule{Site: "persist:*"}
// sweeps the whole persistence layer.
const (
	SiteOpen         = "persist:open"
	SiteLoad         = "persist:load"
	SiteStore        = "persist:store"
	SiteEvict        = "persist:evict"
	SiteSnapshotSave = "persist:snapshot-save"
	SiteSnapshotLoad = "persist:snapshot-load"
)

// Classified load failures. Callers rarely branch on these — every one of
// them means "compile cold" — but tests and eviction accounting do.
var (
	// ErrCorrupt reports a checksum mismatch, short read, torn write, or
	// undecodable payload. The offending file is evicted when possible.
	ErrCorrupt = errors.New("persist: corrupt artifact")
	// ErrSchemaSkew reports an artifact written by an incompatible schema
	// version or a different toolchain/build ID. Skewed entries are evicted
	// like corrupt ones: they can never become loadable again.
	ErrSchemaSkew = errors.New("persist: schema or build-id skew")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("persist: store closed")
	// ErrReadOnly reports a mutation on a store that lost the writer-lock
	// race and degraded to read-only.
	ErrReadOnly = errors.New("persist: store is read-only (writer lock held elsewhere)")
)

// Options configures a Store (and the snapshot helpers).
type Options struct {
	// BuildID identifies the toolchain and cache-relevant engine
	// configuration. It is stamped into every blob header; entries with a
	// different BuildID are version skew and are evicted on load.
	BuildID string
	// Telemetry, when non-nil, receives the odin_persist_* metric families.
	// nil follows the engine's zero-overhead contract: nil handles,
	// nil-check-only updates.
	Telemetry *telemetry.Registry
	// FaultHook, when non-nil, is called at the persist:* sites before each
	// I/O operation. A returned error (or panic — the hook runs under panic
	// isolation) fails that operation, which the store degrades into a
	// counted miss or fallback.
	FaultHook func(site string) error
	// ReadOnly forces read-only mode without attempting the writer lock
	// (inspection tools use it to observe a live engine's cache).
	ReadOnly bool
}

// Metric family names. Registered at zero when a store (or the engine's
// snapshot path) is created with a telemetry registry.
const (
	MetricHits           = "odin_persist_hits_total"
	MetricMisses         = "odin_persist_misses_total"
	MetricStores         = "odin_persist_stores_total"
	MetricCorruptEvicted = "odin_persist_corrupt_evicted_total"
	MetricFallbacks      = "odin_persist_fallbacks_total"
	MetricBytesRead      = "odin_persist_bytes_read_total"
	MetricBytesWritten   = "odin_persist_bytes_written_total"
	MetricLoadSeconds    = "odin_persist_load_seconds"
	MetricStoreSeconds   = "odin_persist_store_seconds"
	MetricEntries        = "odin_persist_entries"
)

// Metrics holds the pre-registered persist metric handles. The zero value
// (and any handle from a nil registry) is nil-safe and free.
type Metrics struct {
	Hits           *telemetry.Counter
	Misses         *telemetry.Counter
	Stores         *telemetry.Counter
	CorruptEvicted *telemetry.Counter
	Fallbacks      *telemetry.Counter
	BytesRead      *telemetry.Counter
	BytesWritten   *telemetry.Counter
	LoadDur        *telemetry.Histogram
	StoreDur       *telemetry.Histogram
	Entries        *telemetry.Gauge
}

// NewMetrics registers the odin_persist_* families on reg (a no-op returning
// nil handles when reg is nil).
func NewMetrics(reg *telemetry.Registry) *Metrics {
	reg.Describe(MetricHits, "Artifacts served from the persistent cache.")
	reg.Describe(MetricMisses, "Persistent-cache lookups that found no usable entry.")
	reg.Describe(MetricStores, "Artifacts published to the persistent cache.")
	reg.Describe(MetricCorruptEvicted, "Corrupt or version-skewed artifacts evicted on detection.")
	reg.Describe(MetricFallbacks, "Persistence operations that failed and fell back to the in-memory path (I/O errors, locked or read-only store, injected faults).")
	reg.Describe(MetricBytesRead, "Bytes read from the persistent cache.")
	reg.Describe(MetricBytesWritten, "Bytes written to the persistent cache.")
	reg.Describe(MetricLoadSeconds, "Persistent-cache load latency (hit or classified miss).")
	reg.Describe(MetricStoreSeconds, "Persistent-cache store latency (atomic publish).")
	reg.Describe(MetricEntries, "Entries currently indexed in the persistent cache.")
	return &Metrics{
		Hits:           reg.Counter(MetricHits),
		Misses:         reg.Counter(MetricMisses),
		Stores:         reg.Counter(MetricStores),
		CorruptEvicted: reg.Counter(MetricCorruptEvicted),
		Fallbacks:      reg.Counter(MetricFallbacks),
		BytesRead:      reg.Counter(MetricBytesRead),
		BytesWritten:   reg.Counter(MetricBytesWritten),
		LoadDur:        reg.Histogram(MetricLoadSeconds, nil),
		StoreDur:       reg.Histogram(MetricStoreSeconds, nil),
		Entries:        reg.Gauge(MetricEntries),
	}
}

// fault runs the hook for one persist site under panic isolation: a hook
// that panics (faultinject.KindPanic) degrades to an error for that one
// operation instead of crashing the process.
func fault(hook func(string) error, site string) (err error) {
	if hook == nil {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("persist: fault hook panicked at %s: %v", site, r)
		}
	}()
	return hook(site)
}
