package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"odin/internal/mir"
	"odin/internal/obj"
	"odin/internal/telemetry"
)

const testBuildID = "test-build-1"

func testOptions() Options {
	return Options{BuildID: testBuildID, Telemetry: telemetry.NewRegistry()}
}

func testEntry(key uint64) *Entry {
	return &Entry{
		Key: key,
		Object: &obj.Object{
			Name: fmt.Sprintf("frag%d", key),
			Funcs: []obj.FuncSym{{
				Name:    fmt.Sprintf("f%d", key),
				Linkage: mir.Global,
				Code: []mir.Inst{
					{Op: mir.MovImm, Rd: 1, Imm: int64(key)},
					{Op: mir.Ret, Rs1: 1},
				},
				NumBlocks:   1,
				BlockStarts: []int{0},
			}},
		},
		Level:      2,
		FuncHashes: map[string]uint64{fmt.Sprintf("f%d", key): key * 31},
	}
}

func mustOpen(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	s, err := Open(dir, o)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	if s.ReadOnly() {
		t.Fatal("first opener should hold the writer lock")
	}
	want := testEntry(7)
	if err := s.Put(7, want); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(7)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got == nil || !reflect.DeepEqual(got.Object, want.Object) ||
		got.Level != want.Level || !reflect.DeepEqual(got.FuncHashes, want.FuncHashes) {
		t.Fatalf("round trip mismatch: got %+v", got)
	}
	if e, err := s.Get(8); e != nil || err != nil {
		t.Fatalf("absent key: got (%v, %v), want (nil, nil)", e, err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStoreSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	for k := uint64(1); k <= 5; k++ {
		if err := s.Put(k, testEntry(k)); err != nil {
			t.Fatalf("Put(%d): %v", k, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	s2 := mustOpen(t, dir, testOptions())
	if s2.Len() != 5 {
		t.Fatalf("reopened index has %d entries, want 5", s2.Len())
	}
	for k := uint64(1); k <= 5; k++ {
		e, err := s2.Get(k)
		if err != nil || e == nil {
			t.Fatalf("Get(%d) after reopen: (%v, %v)", k, e, err)
		}
	}
}

// TestCorruptionMatrix is the blob-level corruption matrix: each mutilation
// of a published entry must classify as corrupt or skewed, evict the entry,
// count it, and serve a plain miss afterwards — never a decode of bad bytes.
func TestCorruptionMatrix(t *testing.T) {
	cases := []struct {
		name     string
		mutilate func(path string) error
		wantErr  error
	}{
		{"truncate-half", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			return os.WriteFile(p, data[:len(data)/2], 0o644)
		}, ErrCorrupt},
		{"zero-length", func(p string) error {
			return os.WriteFile(p, nil, 0o644)
		}, ErrCorrupt},
		{"bit-flip-payload", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[len(data)-1] ^= 0x40
			return os.WriteFile(p, data, 0o644)
		}, ErrCorrupt},
		{"bit-flip-magic", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[0] ^= 0x01
			return os.WriteFile(p, data, 0o644)
		}, ErrCorrupt},
		{"version-skew", func(p string) error {
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			data[11]++ // schema uint32 low byte
			return os.WriteFile(p, data, 0o644)
		}, ErrSchemaSkew},
		{"half-write", func(p string) error {
			// A write torn mid-payload with trailing garbage appended:
			// length matches but checksum cannot.
			data, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			for i := len(data) - 8; i < len(data); i++ {
				data[i] ^= 0xAA
			}
			return os.WriteFile(p, data, 0o644)
		}, ErrCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			s := mustOpen(t, dir, testOptions())
			if err := s.Put(3, testEntry(3)); err != nil {
				t.Fatalf("Put: %v", err)
			}
			path := s.entryPath(3)
			if err := tc.mutilate(path); err != nil {
				t.Fatalf("mutilate: %v", err)
			}
			e, err := s.Get(3)
			if e != nil {
				t.Fatalf("mutilated entry was served: %+v", e)
			}
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Get error = %v, want %v", err, tc.wantErr)
			}
			if got := s.Stats().CorruptEvicted; got != 1 {
				t.Fatalf("corrupt_evicted = %d, want 1", got)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not evicted from disk: %v", err)
			}
			// Detection degrades to a plain miss thereafter.
			if e, err := s.Get(3); e != nil || err != nil {
				t.Fatalf("post-eviction Get: (%v, %v), want (nil, nil)", e, err)
			}
		})
	}
}

func TestBuildIDSkewEvicts(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	if err := s.Put(1, testEntry(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A different toolchain reopening the same directory owns it (writer)
	// and clears the skewed entries at Open via the manifest check.
	s2 := mustOpen(t, dir, Options{BuildID: "other-build"})
	if s2.Len() != 0 {
		t.Fatalf("skewed store reopened with %d entries, want 0", s2.Len())
	}
	if e, err := s2.Get(1); e != nil || err != nil {
		t.Fatalf("Get after skew clear: (%v, %v)", e, err)
	}
}

func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	for k := uint64(1); k <= 3; k++ {
		if err := s.Put(k, testEntry(k)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Simulate kill -9 mid-append: a partial record at the tail.
	jpath := filepath.Join(dir, "journal")
	f, err := os.OpenFile(jpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{journalOpPut, 0xde, 0xad})
	f.Close()

	s2 := mustOpen(t, dir, testOptions())
	if s2.Len() != 3 {
		t.Fatalf("torn-tail replay found %d entries, want 3", s2.Len())
	}
	// The writer truncated the tail; appends continue cleanly.
	if err := s2.Put(4, testEntry(4)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if fi, err := os.Stat(jpath); err != nil || fi.Size()%journalRecSize != 0 {
		t.Fatalf("journal not truncated to record boundary: size %d", fi.Size())
	}
}

func TestJournalGarbageRebuildsFromScan(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	for k := uint64(1); k <= 3; k++ {
		if err := s.Put(k, testEntry(k)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := os.WriteFile(filepath.Join(dir, "journal"), []byte("not a journal, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, testOptions())
	if s2.Len() != 3 {
		t.Fatalf("scan recovery found %d entries, want 3", s2.Len())
	}
}

func TestAbandonedTempSwept(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	if err := s.Put(1, testEntry(1)); err != nil {
		t.Fatal(err)
	}
	shard := filepath.Dir(s.entryPath(1))
	tmp := filepath.Join(shard, tempPattern+"abandoned-12345")
	if err := os.WriteFile(tmp, []byte("half a write"), 0o644); err != nil {
		t.Fatal(err)
	}
	s.Close()
	mustOpen(t, dir, testOptions())
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("abandoned temp file survived reopen: %v", err)
	}
}

func TestSecondOpenerDegradesReadOnly(t *testing.T) {
	dir := t.TempDir()
	w := mustOpen(t, dir, testOptions())
	if err := w.Put(1, testEntry(1)); err != nil {
		t.Fatal(err)
	}
	r := mustOpen(t, dir, testOptions())
	if !r.ReadOnly() {
		t.Fatal("second opener should degrade to read-only")
	}
	if e, err := r.Get(1); err != nil || e == nil {
		t.Fatalf("read-only Get: (%v, %v)", e, err)
	}
	if err := r.Put(2, testEntry(2)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Put error = %v, want ErrReadOnly", err)
	}
	if r.Stats().Fallbacks == 0 {
		t.Fatal("read-only Put should count a fallback")
	}
	// Writer lock is released on Close; a later opener becomes the writer.
	w.Close()
	r.Close()
	w2 := mustOpen(t, dir, testOptions())
	if w2.ReadOnly() {
		t.Fatal("opener after writer Close should win the lock")
	}
}

func TestClosedStore(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.Get(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed store: %v", err)
	}
	if err := s.Put(1, testEntry(1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed store: %v", err)
	}
}

func TestFaultSitesDegrade(t *testing.T) {
	injected := errors.New("injected")
	t.Run("open", func(t *testing.T) {
		o := testOptions()
		o.FaultHook = func(site string) error {
			if site == SiteOpen {
				return injected
			}
			return nil
		}
		if _, err := Open(t.TempDir(), o); !errors.Is(err, injected) {
			t.Fatalf("Open with fault: %v", err)
		}
	})
	t.Run("load-store", func(t *testing.T) {
		arm := ""
		o := testOptions()
		o.FaultHook = func(site string) error {
			if site == arm {
				return injected
			}
			return nil
		}
		s := mustOpen(t, t.TempDir(), o)
		arm = SiteStore
		if err := s.Put(1, testEntry(1)); !errors.Is(err, injected) {
			t.Fatalf("Put with fault: %v", err)
		}
		arm = ""
		if err := s.Put(1, testEntry(1)); err != nil {
			t.Fatalf("Put after fault cleared: %v", err)
		}
		arm = SiteLoad
		if e, err := s.Get(1); e != nil || !errors.Is(err, injected) {
			t.Fatalf("Get with fault: (%v, %v)", e, err)
		}
		arm = ""
		if e, err := s.Get(1); err != nil || e == nil {
			t.Fatalf("Get after fault cleared: (%v, %v)", e, err)
		}
		if s.Stats().Fallbacks != 2 {
			t.Fatalf("fallbacks = %d, want 2", s.Stats().Fallbacks)
		}
	})
	t.Run("panic-hook-isolated", func(t *testing.T) {
		o := testOptions()
		o.FaultHook = func(site string) error {
			if site == SiteLoad {
				panic("injected panic")
			}
			return nil
		}
		s := mustOpen(t, t.TempDir(), o)
		if err := s.Put(1, testEntry(1)); err != nil {
			t.Fatal(err)
		}
		if e, err := s.Get(1); e != nil || err == nil {
			t.Fatalf("panicking hook should fail the load: (%v, %v)", e, err)
		}
	})
}

func TestWriteFileAtomicReplaces(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("v2-longer"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2-longer" {
		t.Fatalf("read back %q, %v", data, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
}

func TestStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "engine.snap")
	o := testOptions()
	want := &EngineState{
		ModuleHash: 0xfeed,
		Variant:    "callgraph",
		OptLevel:   2,
		Fragments:  4,
		Hashes:     map[int]uint64{0: 1, 1: 2},
		FuncMeta:   map[int]FuncMeta{0: {Level: 2, FuncHashes: map[string]uint64{"f": 9}}},
		Quarantine: map[int][]string{3: {"licm"}},
		Deferred:   []int{2},
		Supervisor: &SupervisorState{Breaker: 1, ConsecFails: 3, BackoffNS: 1e6, Quarantined: map[int]string{3: "boom"}},
	}
	if err := SaveState(path, want, o); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	got, err := LoadState(path, o)
	if err != nil {
		t.Fatalf("LoadState: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("state round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestStateMissingAndCorrupt(t *testing.T) {
	o := testOptions()
	path := filepath.Join(t.TempDir(), "engine.snap")
	if st, err := LoadState(path, o); st != nil || err != nil {
		t.Fatalf("missing snapshot: (%v, %v), want (nil, nil)", st, err)
	}
	if err := SaveState(path, &EngineState{ModuleHash: 1}, o); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF
	os.WriteFile(path, data, 0o644)
	if st, err := LoadState(path, o); st != nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot: (%v, %v), want ErrCorrupt", st, err)
	}
	// The corrupt file was removed: next load is a clean cold start.
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt snapshot not removed")
	}
	if st, err := LoadState(path, o); st != nil || err != nil {
		t.Fatalf("post-removal load: (%v, %v), want (nil, nil)", st, err)
	}
	// Wrong magic: an entry blob is never accepted as a snapshot.
	if _, err := writeBlobAtomic(path, MagicEntry, o.BuildID, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if st, err := LoadState(path, o); st != nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("entry-magic snapshot: (%v, %v), want ErrCorrupt", st, err)
	}
}

func TestEntryKeyMismatchIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	if err := s.Put(1, testEntry(1)); err != nil {
		t.Fatal(err)
	}
	// Rename the entry under a different key's name: content addressing
	// violated, so the loader must reject it.
	src := s.entryPath(1)
	dst := s.entryPath(2)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.index[2] = s.index[1]
	s.mu.Unlock()
	if e, err := s.Get(2); e != nil || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("misfiled entry: (%v, %v), want ErrCorrupt", e, err)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, testOptions())
	done := make(chan error, 8)
	for w := 0; w < 4; w++ {
		go func(w int) {
			var err error
			for k := uint64(0); k < 20; k++ {
				if e := s.Put(uint64(w)*100+k, testEntry(uint64(w)*100+k)); e != nil {
					err = e
				}
			}
			done <- err
		}(w)
		go func(w int) {
			var err error
			for k := uint64(0); k < 20; k++ {
				if _, e := s.Get(uint64(w)*100 + k); e != nil {
					err = e
				}
			}
			done <- err
		}(w)
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent op: %v", err)
		}
	}
	if s.Len() != 80 {
		t.Fatalf("entries = %d, want 80", s.Len())
	}
}
