package persist

import (
	"errors"
	"fmt"
	"os"
)

// EngineState is the persisted form of an engine's warm-start metadata: the
// cache keys and function hashes that let a restarted engine recognize its
// persisted artifacts, plus the degradation state (quarantine, deferrals,
// breaker) that must survive a restart so a crashing pass or a tripped
// breaker is not re-trusted just because the process bounced.
type EngineState struct {
	// ModuleHash fingerprints the pristine module the snapshot was taken
	// against. A restore against a different module is version skew: every
	// per-fragment fact in the snapshot is keyed by fragment ID, and IDs are
	// only stable for an identical partition of an identical module.
	ModuleHash uint64
	// Variant is the partitioner variant name, a second identity guard.
	Variant string
	// OptLevel is the engine's configured optimization level.
	OptLevel int
	// Fragments is the partition's fragment count (identity guard).
	Fragments int
	// VerifyTier is the snapshotting engine's resolved verification tier
	// (core.VerifyMode's integer value). A warm restart skips re-running the
	// strict input-module check only when the snapshotting session held the
	// module to that bar (the module hash proves the content is identical).
	VerifyTier int
	// Hashes are the committed per-fragment content hashes.
	Hashes map[int]uint64
	// FuncMeta is the per-fragment function-granular cache metadata.
	FuncMeta map[int]FuncMeta
	// Quarantine maps fragment ID to the pass names quarantined for it.
	Quarantine map[int][]string
	// Deferred lists fragment IDs whose last compile deferred to the cached
	// object.
	Deferred []int
	// Survey, when non-nil, is the partitioner's classification survey for
	// this module at this opt level. The survey is a pure function of
	// (module, optLevel) but costs a trial optimization run of the whole
	// module to compute; restoring it lets a warm engine partition without
	// re-running the trial. Guarded by ModuleHash and OptLevel above.
	Survey *SurveyState
	// VerifiedFuncs carries the boundary verifier's clean results across
	// restarts: function name to the FingerprintSym content hash that was
	// strictly verified in the snapshotting session. A warm rebuild skips
	// re-verifying a function whose hash still matches — the same rule the
	// in-memory verification cache applies within a session.
	VerifiedFuncs map[string]uint64
	// Supervisor, when non-nil, is the supervisor's breaker state.
	Supervisor *SupervisorState
}

// SurveyState is the persisted form of the partitioner's classification
// survey (core.Classification): symbol categories plus the bond/copy
// constraints the trial optimization run discovered.
type SurveyState struct {
	// Cat maps defined symbol names to their category's integer value.
	Cat map[string]int
	// BondPairs and InnatePairs are symbol pairs that must share a fragment.
	BondPairs   [][2]string
	InnatePairs [][2]string
	// CopyUsers maps each copy-on-use symbol to its inspecting functions.
	CopyUsers map[string][]string
}

// FuncMeta is the persisted form of a fragment's function-cache metadata.
type FuncMeta struct {
	Level      int
	FuncHashes map[string]uint64
}

// SupervisorState is the persisted form of a rebuild supervisor's breaker
// and quarantine state.
type SupervisorState struct {
	// Breaker is the circuit state (core.BreakerState's integer value).
	Breaker int
	// ConsecFails is the consecutive-failure count feeding the breaker.
	ConsecFails int
	// BackoffNS is the current half-open backoff, in nanoseconds.
	BackoffNS int64
	// Quarantined maps fragment ID to the failure message that quarantined
	// it from supervised rebuilds.
	Quarantined map[int]string
}

// SaveState atomically writes an engine state snapshot to path, framed and
// checksummed like every other persisted artifact.
func SaveState(path string, st *EngineState, o Options) error {
	if err := fault(o.FaultHook, SiteSnapshotSave); err != nil {
		return err
	}
	_, err := writeBlobAtomic(path, MagicSnapshot, o.BuildID, encodeState(st))
	return err
}

// LoadState reads and verifies an engine state snapshot. A missing file
// returns (nil, nil) — the ordinary cold start. A corrupt or skewed snapshot
// is removed (it can never become loadable) and returns an error the caller
// degrades into a cold start.
func LoadState(path string, o Options) (*EngineState, error) {
	if err := fault(o.FaultHook, SiteSnapshotLoad); err != nil {
		return nil, err
	}
	payload, _, err := readBlob(path, MagicSnapshot, o.BuildID)
	if err != nil {
		if (errors.Is(err, ErrCorrupt) || errors.Is(err, ErrSchemaSkew)) && !o.ReadOnly {
			os.Remove(path)
		}
		return nil, err
	}
	if payload == nil {
		return nil, nil
	}
	st, derr := decodeState(payload)
	if derr != nil {
		if !o.ReadOnly {
			os.Remove(path)
		}
		return nil, fmt.Errorf("%w: undecodable snapshot: %v", ErrCorrupt, derr)
	}
	return st, nil
}
