package persist

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"odin/internal/obj"
)

// Entry is one persisted fragment artifact: the compiled object plus the
// function-granular cache metadata a warm engine needs to keep splicing
// against it. Degraded or quarantined objects are never persisted (the
// disk-tier mirror of "degraded objects never donate"), so every entry is a
// clean compile at its recorded level.
type Entry struct {
	// Key echoes the cache key the entry was stored under; a mismatch on
	// load means the content-addressed layout was tampered with or a rename
	// landed on the wrong name, and classifies as corruption.
	Key uint64
	// Object is the compiled fragment object.
	Object *obj.Object
	// Level is the optimization level the object was compiled at.
	Level int
	// FuncHashes are the per-function deep hashes (reference-closure folds)
	// the object's code was compiled from — fragMeta's persisted form.
	FuncHashes map[string]uint64
}

// Stats is a point-in-time snapshot of a store's counters, mirrored from
// the odin_persist_* metric families so tests and inspection tools need no
// telemetry registry.
type Stats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Stores         uint64 `json:"stores"`
	CorruptEvicted uint64 `json:"corrupt_evicted"`
	Fallbacks      uint64 `json:"fallbacks"`
	BytesRead      uint64 `json:"bytes_read"`
	BytesWritten   uint64 `json:"bytes_written"`
	Entries        int    `json:"entries"`
	ReadOnly       bool   `json:"read_only"`
}

// Store is a disk-backed artifact cache over one directory:
//
//	<dir>/lock            writer flock
//	<dir>/MANIFEST        store identity blob (schema + build ID)
//	<dir>/journal         append-only publish/evict log (see journal.go)
//	<dir>/objects/<xx>/<key16>.obj   sharded content-addressed entries
//
// All methods are safe for concurrent use; Get and Put from concurrent
// compile-pool workers serialize only on the in-memory index, not on I/O.
type Store struct {
	dir     string
	buildID string
	hook    func(string) error
	metrics *Metrics

	// writer reports whether this store holds the exclusive writer lock.
	// Read-only stores serve Gets and silently refuse mutations.
	writer bool
	lockF  *os.File

	mu      sync.Mutex
	closed  bool
	index   map[uint64]int64 // live keys → entry size
	journal *os.File

	hits, misses, stores, corrupt, fallbacks atomic.Uint64
	bytesRead, bytesWritten                  atomic.Uint64
}

const entrySuffix = ".obj"

// entryName formats a key as its content-addressed file name.
func entryName(key uint64) string { return fmt.Sprintf("%016x%s", key, entrySuffix) }

func parseEntryName(name string) (uint64, bool) {
	hex := strings.TrimSuffix(name, entrySuffix)
	if len(hex) != 16 {
		return 0, false
	}
	key, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return key, true
}

// entryPath returns the sharded path for a key (shard = top byte).
func (s *Store) entryPath(key uint64) string {
	return filepath.Join(s.dir, "objects", fmt.Sprintf("%02x", byte(key>>56)), entryName(key))
}

// manifest is the store-identity payload. Entries carry the same identity in
// every blob header; the manifest lets a writer detect a whole-directory
// schema skew at Open and clear the dead weight eagerly instead of evicting
// entry by entry.
type manifest struct {
	Schema  uint32
	BuildID string
}

// Open opens (creating if needed) the artifact store in dir. The first
// opener to win the writer flock may publish and evict; later openers on
// the same directory — and Options.ReadOnly ones — degrade to read-only.
// Open fails only on hard I/O errors against the directory itself; a
// corrupt journal or manifest is repaired (writer) or tolerated (reader),
// never fatal.
func Open(dir string, o Options) (*Store, error) {
	if err := fault(o.FaultHook, SiteOpen); err != nil {
		return nil, err
	}
	objDir := filepath.Join(dir, "objects")
	if err := os.MkdirAll(objDir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		buildID: o.BuildID,
		hook:    o.FaultHook,
		metrics: NewMetrics(o.Telemetry),
	}
	if !o.ReadOnly {
		lockF, err := acquireWriterLock(filepath.Join(dir, "lock"))
		if err != nil {
			return nil, err
		}
		s.lockF = lockF
		s.writer = lockF != nil
	}

	// Identity check. A writer finding a skewed or corrupt manifest owns the
	// directory now: clear the incompatible entries and restamp. A reader
	// can repair nothing — it opens with an empty view (every Get misses)
	// rather than failing, since its engine must run regardless.
	manifestPath := filepath.Join(dir, "MANIFEST")
	ok, err := checkManifest(manifestPath, o.BuildID)
	if err != nil && s.writer {
		return nil, err
	}
	if !ok {
		if !s.writer {
			s.index = map[uint64]int64{}
			s.metrics.Entries.Set(0)
			return s, nil
		}
		if err := s.clearAll(); err != nil {
			releaseWriterLock(s.lockF)
			return nil, err
		}
		if err := writeManifest(manifestPath, o.BuildID); err != nil {
			releaseWriterLock(s.lockF)
			return nil, err
		}
	}

	// Index: replay the journal, tolerate its torn tail, and cross-check
	// against reality with a directory scan when the journal is useless.
	index, goodLen, jerr := replayJournal(filepath.Join(dir, "journal"))
	if jerr != nil || len(index) == 0 {
		if scanned := scanObjects(objDir); len(scanned) > 0 || jerr != nil {
			index = scanned
			goodLen = 0 // journal unusable: writer rewrites it below
		}
	}
	s.index = index
	if s.writer {
		sweepTemps(objDir)
		jf, err := openJournalForAppend(filepath.Join(dir, "journal"), goodLen)
		if err != nil {
			releaseWriterLock(s.lockF)
			return nil, err
		}
		s.journal = jf
		if goodLen == 0 && len(index) > 0 {
			// Rebuilt from scan: re-seed the journal so the next Open is a
			// pure replay again.
			for key, size := range index {
				appendJournal(jf, journalRec{op: journalOpPut, key: key, size: size})
			}
		}
	}
	s.metrics.Entries.Set(int64(len(s.index)))
	return s, nil
}

// checkManifest reports whether the manifest matches the current identity.
// Missing, corrupt, or skewed manifests all report false; only hard I/O
// errors surface.
func checkManifest(path, buildID string) (bool, error) {
	payload, _, err := readBlob(path, MagicSnapshot, buildID)
	if err != nil {
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrSchemaSkew) {
			return false, nil
		}
		return false, err
	}
	if payload == nil {
		return false, nil
	}
	var m manifest
	if gob.NewDecoder(bytes.NewReader(payload)).Decode(&m) != nil {
		return false, nil
	}
	return m.Schema == Schema && m.BuildID == buildID, nil
}

func writeManifest(path, buildID string) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(manifest{Schema: Schema, BuildID: buildID}); err != nil {
		return err
	}
	_, err := writeBlobAtomic(path, MagicSnapshot, buildID, buf.Bytes())
	return err
}

// clearAll removes every entry and the journal — the writer's response to a
// whole-directory schema skew.
func (s *Store) clearAll() error {
	objDir := filepath.Join(s.dir, "objects")
	if err := os.RemoveAll(objDir); err != nil {
		return err
	}
	os.Remove(filepath.Join(s.dir, "journal"))
	return os.MkdirAll(objDir, 0o755)
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// ReadOnly reports whether the store degraded to read-only (writer lock
// held elsewhere, or Options.ReadOnly).
func (s *Store) ReadOnly() bool { return !s.writer }

// Len returns the number of live entries in the index.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Stores:         s.stores.Load(),
		CorruptEvicted: s.corrupt.Load(),
		Fallbacks:      s.fallbacks.Load(),
		BytesRead:      s.bytesRead.Load(),
		BytesWritten:   s.bytesWritten.Load(),
		Entries:        s.Len(),
		ReadOnly:       s.ReadOnly(),
	}
}

// fallback counts one operation that degraded to the in-memory path.
func (s *Store) fallback() {
	s.fallbacks.Add(1)
	s.metrics.Fallbacks.Inc()
}

// Get loads the entry for key. A usable entry returns (*Entry, nil); every
// other outcome — absent, corrupt (evicted), skewed (evicted), injected
// fault, I/O error, closed store — returns (nil, err) with err describing
// the cause (nil for a plain miss). Callers compile cold on any nil Entry.
func (s *Store) Get(key uint64) (*Entry, error) {
	t0 := time.Now()
	defer func() { s.metrics.LoadDur.Observe(time.Since(t0)) }()
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		s.fallback()
		return nil, ErrClosed
	}
	if err := fault(s.hook, SiteLoad); err != nil {
		s.fallback()
		return nil, err
	}
	path := s.entryPath(key)
	payload, n, err := readBlob(path, MagicEntry, s.buildID)
	s.bytesRead.Add(uint64(n))
	s.metrics.BytesRead.Add(uint64(n))
	if err != nil {
		if errors.Is(err, ErrCorrupt) || errors.Is(err, ErrSchemaSkew) {
			s.evict(key, path)
		} else {
			s.fallback()
		}
		s.miss()
		return nil, err
	}
	if payload == nil {
		s.miss()
		s.dropIndexed(key)
		return nil, nil
	}
	e, err := decodeEntry(payload)
	if err != nil {
		s.evict(key, path)
		s.miss()
		return nil, err
	}
	// The checksum proved the bytes are what the writer published; these
	// checks prove the writer published something sane for THIS key.
	if e.Key != key {
		s.evict(key, path)
		s.miss()
		return nil, fmt.Errorf("%w: entry key %016x under name %016x", ErrCorrupt, e.Key, key)
	}
	if err := e.Object.Validate(); err != nil {
		s.evict(key, path)
		s.miss()
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	s.hits.Add(1)
	s.metrics.Hits.Inc()
	return e, nil
}

func (s *Store) miss() {
	s.misses.Add(1)
	s.metrics.Misses.Inc()
}

// Put publishes an entry atomically. Failures — read-only store, closed
// store, injected fault, full disk — are counted fallbacks; the caller's
// in-memory cache is unaffected either way.
func (s *Store) Put(key uint64, e *Entry) error {
	t0 := time.Now()
	defer func() { s.metrics.StoreDur.Observe(time.Since(t0)) }()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.fallback()
		return ErrClosed
	}
	if !s.writer {
		s.mu.Unlock()
		s.fallback()
		return ErrReadOnly
	}
	if _, dup := s.index[key]; dup {
		// Content-addressed: an indexed key already holds these bytes.
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()

	if e.Object == nil {
		s.fallback()
		return fmt.Errorf("persist: refusing to store entry %016x without an object", key)
	}
	if err := fault(s.hook, SiteStore); err != nil {
		s.fallback()
		return err
	}
	e.Key = key
	payload := encodeEntry(e)
	path := s.entryPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		s.fallback()
		return err
	}
	n, err := writeBlobAtomic(path, MagicEntry, s.buildID, payload)
	if err != nil {
		s.fallback()
		return err
	}
	s.bytesWritten.Add(uint64(n))
	s.metrics.BytesWritten.Add(uint64(n))
	s.stores.Add(1)
	s.metrics.Stores.Inc()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		// Lost the race with Close after the entry landed: the entry is
		// valid on disk and will be rediscovered by the next Open's scan;
		// only this journal record is skipped.
		return nil
	}
	s.index[key] = int64(n)
	s.metrics.Entries.Set(int64(len(s.index)))
	appendJournal(s.journal, journalRec{op: journalOpPut, key: key, size: int64(n)})
	return nil
}

// evict removes a corrupt or skewed entry on detection. Read-only stores
// cannot unlink; they still count the detection and forget the key.
func (s *Store) evict(key uint64, path string) {
	s.corrupt.Add(1)
	s.metrics.CorruptEvicted.Inc()
	if ferr := fault(s.hook, SiteEvict); ferr != nil {
		s.fallback()
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writer && !s.closed {
		os.Remove(path)
		appendJournal(s.journal, journalRec{op: journalOpDel, key: key})
	}
	delete(s.index, key)
	s.metrics.Entries.Set(int64(len(s.index)))
}

// dropIndexed forgets a key whose file vanished underneath the index (an
// external cleanup); the journal records the deletion so the next Open
// agrees.
func (s *Store) dropIndexed(key uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.index[key]; !ok {
		return
	}
	delete(s.index, key)
	s.metrics.Entries.Set(int64(len(s.index)))
	if s.writer && !s.closed {
		appendJournal(s.journal, journalRec{op: journalOpDel, key: key})
	}
}

// Close flushes the journal and releases the writer lock. It is idempotent
// and safe to call concurrently with in-flight Gets and Puts: operations
// that lose the race fail with ErrClosed and are counted fallbacks.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.journal != nil {
		if serr := s.journal.Sync(); serr != nil {
			err = serr
		}
		if cerr := s.journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
		s.journal = nil
	}
	releaseWriterLock(s.lockF)
	s.lockF = nil
	return err
}
