package prng

// RNG is a deterministic xorshift64* generator. The fuzzer must be fully
// reproducible so experiment corpora are identical across runs and tools.
type RNG struct {
	state uint64
}

// NewRNG seeds a generator; seed 0 is remapped to a fixed constant.
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Byte returns a random byte.
func (r *RNG) Byte() byte { return byte(r.Uint64()) }

// Bool returns a random boolean.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }
