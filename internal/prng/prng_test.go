package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterministicStreams(t *testing.T) {
	prop := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 50; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	if NewRNG(0).Uint64() == 0 {
		t.Fatal("zero seed produced zero state")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c == 0 {
			t.Fatalf("value %d never produced", v)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("non-positive n should yield 0")
	}
}

func TestByteAndBool(t *testing.T) {
	r := NewRNG(9)
	seenTrue, seenFalse := false, false
	bytes := map[byte]bool{}
	for i := 0; i < 2000; i++ {
		if r.Bool() {
			seenTrue = true
		} else {
			seenFalse = true
		}
		bytes[r.Byte()] = true
	}
	if !seenTrue || !seenFalse {
		t.Fatal("Bool not varied")
	}
	if len(bytes) < 128 {
		t.Fatalf("Byte poorly distributed: %d distinct", len(bytes))
	}
}
