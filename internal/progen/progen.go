// Package progen deterministically generates the 13-program workload suite
// standing in for the Google fuzzer-test-suite / FuzzBench programs the
// paper evaluates on (§5).
//
// What the experiments need from each target is its *shape*, not its code:
// how many functions, how big, how reliant on interprocedural optimization
// (harfbuzz suffers 187% overhead under blind partitioning; libjpeg under
// 1%), whether one enormous interpreter function dominates (sqlite's
// sqlite3VdbeExec), or whether the program is a header-only template library
// whose hundreds of tiny functions mostly fold away (json). Profiles encode
// those shapes; Generate lowers a profile to a self-contained IR program
// with a fuzz_target(data, len) entry point that parses its input, branches
// on magic bytes, and exercises helper call graphs.
package progen

import (
	"fmt"

	"odin/internal/ir"
	"odin/internal/prng"
)

// Profile parameterizes one generated program.
type Profile struct {
	Name string
	Seed uint64

	// Parsers is the number of top-level input-parsing functions the
	// entry point dispatches to.
	Parsers int
	// ParserLoopBlocks controls CFG size inside each parser.
	ParserLoopBlocks int
	// TinyHelpers are small internal functions (inline candidates).
	TinyHelpers int
	// UncalledHelpers are generated but never called (template-library
	// bloat; global DCE removes them whole-program, as with json where
	// only 27 of 544 functions survive).
	UncalledHelpers int
	// DeadArgHelpers are internal helpers with an unused parameter
	// (dead-argument-elimination candidates).
	DeadArgHelpers int
	// HelperCallDensity is the probability (in percent) that a parser's
	// loop body calls a dead-arg helper.
	HelperCallDensity int
	// HelperCallsPerIter is the number of tiny-helper calls chained into
	// each parser loop iteration — the knob for interprocedural-
	// optimization reliance. Half of the calls pass constant arguments,
	// so whole-program inlining folds them away entirely while a blindly
	// partitioned build pays the full call on every iteration.
	HelperCallsPerIter int
	// ConstTables are internal constant byte tables (copy-on-use
	// candidates via constant-index loads).
	ConstTables int
	// PrintfStrings adds printf("...\n") calls (the puts-rewrite
	// copy-on-use case). They execute rarely (behind a magic check).
	PrintfStrings int
	// BigSwitchCases, when positive, adds a sqlite3VdbeExec-style
	// interpreter function with that many opcode cases.
	BigSwitchCases int
	// Aliases adds alias symbols for parser functions.
	Aliases int
	// MagicsPerParser is the number of nested magic-byte roadblocks.
	MagicsPerParser int
	// JunkArith is the length of foldable arithmetic chains planted in
	// hot blocks (local-optimization wins).
	JunkArith int
	// PlantBug hides an abort() behind a 3-byte magic sequence in
	// parser 0 — the fuzzing-demo target.
	PlantBug bool
}

// gen carries generation state.
type gen struct {
	p   Profile
	rng *prng.RNG
	m   *ir.Module
	b   *ir.Builder

	state  *ir.GlobalVar
	tables []*ir.GlobalVar
	msgs   []*ir.GlobalVar

	tinyNames []string
	daNames   []string
}

// Generate lowers the profile to a verified module.
func (p Profile) Generate() *ir.Module {
	g := &gen{
		p:   p,
		rng: prng.NewRNG(p.Seed ^ hashName(p.Name)),
		m:   ir.NewModule(p.Name),
		b:   ir.NewBuilder(),
	}
	g.declareRuntime()
	g.emitGlobals()
	g.emitHelpers()
	var parserNames []string
	for i := 0; i < max(1, p.Parsers); i++ {
		parserNames = append(parserNames, g.emitParser(i))
	}
	interpName := ""
	if p.BigSwitchCases > 0 {
		interpName = g.emitBigSwitch()
	}
	g.emitAliases(parserNames)
	g.emitEntry(parserNames, interpName)
	ir.MustVerify(g.m)
	return g.m
}

func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// helperSubset returns parser idx's local slice of the helper pool.
func helperSubset(names []string, idx, parsers int) []string {
	if len(names) == 0 || parsers <= 1 {
		return names
	}
	per := max(1, len(names)/parsers)
	start := (idx * per) % len(names)
	end := start + per
	if end > len(names) {
		end = len(names)
	}
	return names[start:end]
}

func (g *gen) declareRuntime() {
	ir.NewDecl(g.m, "write_byte", &ir.FuncType{Params: []ir.Type{ir.I64}, Ret: ir.Void})
	ir.NewDecl(g.m, "printf", &ir.FuncType{Params: []ir.Type{ir.Ptr}, Ret: ir.I32})
	ir.NewDecl(g.m, "abort", &ir.FuncType{Params: nil, Ret: ir.Void})
}

func (g *gen) emitGlobals() {
	g.state = g.m.AddGlobal(&ir.GlobalVar{
		Name: "state",
		Elem: &ir.ArrayType{Elem: ir.I64, Len: 64},
	})
	for i := 0; i < g.p.ConstTables; i++ {
		init := make([]byte, 16)
		for j := range init {
			init[j] = g.rng.Byte()
		}
		g.tables = append(g.tables, g.m.AddGlobal(&ir.GlobalVar{
			Name:    fmt.Sprintf("tab%d", i),
			Elem:    &ir.ArrayType{Elem: ir.I8, Len: 16},
			Init:    init,
			Const:   true,
			Linkage: ir.Internal,
		}))
	}
	for i := 0; i < g.p.PrintfStrings; i++ {
		s := fmt.Sprintf("event-%d\n\x00", i)
		g.msgs = append(g.msgs, g.m.AddGlobal(&ir.GlobalVar{
			Name:    fmt.Sprintf("msg%d", i),
			Elem:    &ir.ArrayType{Elem: ir.I8, Len: int64(len(s))},
			Init:    []byte(s),
			Const:   true,
			Linkage: ir.Internal,
		}))
	}
}

// junkChain plants a foldable arithmetic chain on v.
func (g *gen) junkChain(v ir.Value) ir.Value {
	for i := 0; i < g.p.JunkArith; i++ {
		switch g.rng.Intn(4) {
		case 0:
			v = g.b.Add(v, ir.Const(ir.I64, 0))
		case 1:
			v = g.b.Mul(v, ir.Const(ir.I64, 1))
		case 2:
			v = g.b.Xor(v, ir.Const(ir.I64, 0))
		case 3:
			t := g.b.Add(v, ir.Const(ir.I64, int64(g.rng.Intn(16))))
			v = g.b.Add(t, ir.Const(ir.I64, int64(-g.rng.Intn(16))))
		}
	}
	return v
}

// arithBody emits a short real computation on v.
func (g *gen) arithBody(v ir.Value, spice int64) ir.Value {
	ops := []ir.Op{ir.OpAdd, ir.OpXor, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpSub}
	n := 2 + g.rng.Intn(4)
	for i := 0; i < n; i++ {
		op := ops[g.rng.Intn(len(ops))]
		c := int64(g.rng.Intn(61) + 1)
		if op == ir.OpMul {
			c = int64(2 + g.rng.Intn(6))
		}
		v = g.b.Bin(op, v, ir.Const(ir.I64, c+spice))
	}
	return v
}

func (g *gen) emitHelpers() {
	for i := 0; i < g.p.TinyHelpers; i++ {
		name := fmt.Sprintf("tiny%d", i)
		f := ir.NewFunc(g.m, name, &ir.FuncType{Params: []ir.Type{ir.I64}, Ret: ir.I64}, []string{"x"})
		f.Linkage = ir.Internal
		g.b.SetBlock(f.AddBlock("entry"))
		v := g.arithBody(f.Params[0], int64(i))
		g.b.Ret(v)
		g.tinyNames = append(g.tinyNames, name)
	}
	for i := 0; i < g.p.UncalledHelpers; i++ {
		name := fmt.Sprintf("unused%d", i)
		f := ir.NewFunc(g.m, name, &ir.FuncType{Params: []ir.Type{ir.I64}, Ret: ir.I64}, []string{"x"})
		f.Linkage = ir.Internal
		g.b.SetBlock(f.AddBlock("entry"))
		g.b.Ret(g.arithBody(f.Params[0], int64(i)))
	}
	for i := 0; i < g.p.DeadArgHelpers; i++ {
		name := fmt.Sprintf("da%d", i)
		f := ir.NewFunc(g.m, name, &ir.FuncType{Params: []ir.Type{ir.I64, ir.I64}, Ret: ir.I64}, []string{"x", "mode"})
		f.Linkage = ir.Internal
		f.NoInline = true // keep it a call so DAE is the observable effect
		g.b.SetBlock(f.AddBlock("entry"))
		v := g.arithBody(f.Params[0], int64(i*3))
		// Optionally read a constant table at a constant index: the
		// copy-on-use generator.
		if len(g.tables) > 0 && g.rng.Intn(2) == 0 {
			tab := g.tables[g.rng.Intn(len(g.tables))]
			p := g.b.GEP(tab, ir.Const(ir.I64, int64(g.rng.Intn(16))), 1)
			tv := g.b.Load(ir.I8, p)
			tv64 := g.b.ZExt(tv, ir.I64)
			v = g.b.Add(v, tv64)
		}
		g.b.Ret(v)
		g.daNames = append(g.daNames, name)
	}
}

// emitParser builds one top-level parse_<i>(data, len) function.
func (g *gen) emitParser(idx int) string {
	name := fmt.Sprintf("parse_%d", idx)
	f := ir.NewFunc(g.m, name, &ir.FuncType{Params: []ir.Type{ir.Ptr, ir.I64}, Ret: ir.I64}, []string{"data", "len"})
	f.Linkage = ir.Internal
	f.NoInline = true
	data, length := f.Params[0], f.Params[1]

	entry := f.AddBlock("entry")
	head := f.AddBlock("head")
	body := f.AddBlock("body")
	exit := f.AddBlock("exit")

	g.b.SetBlock(entry)
	g.b.Br(head)

	// Loop header: i, acc phis.
	g.b.SetBlock(head)
	iPhi := g.b.Phi(ir.I64, []ir.Value{ir.Const(ir.I64, 0), nil}, []*ir.Block{entry, nil})
	accPhi := g.b.Phi(ir.I64, []ir.Value{ir.Const(ir.I64, int64(idx)), nil}, []*ir.Block{entry, nil})
	cond := g.b.ICmp(ir.PredSLT, iPhi, length)
	g.b.CondBr(cond, body, exit)

	// Loop body: load byte, then a chain of feature blocks.
	g.b.SetBlock(body)
	ptr := g.b.GEP(data, iPhi, 1)
	bByte := g.b.Load(ir.I8, ptr)
	b64 := g.b.ZExt(bByte, ir.I64)
	var acc ir.Value = g.b.Add(accPhi, b64)
	acc = g.junkChain(acc)

	cur := body
	// Range-check diamond (the islower pattern) feeding coverage-relevant
	// branching.
	lo := int64(g.rng.Intn(64) + 32)
	hi := lo + int64(g.rng.Intn(24)+4)
	inRange := f.AddBlock(fmt.Sprintf("inrange%d", idx))
	afterRange := f.AddBlock(fmt.Sprintf("afterrange%d", idx))
	g.b.SetBlock(cur)
	c1 := g.b.ICmp(ir.PredSGE, b64, ir.Const(ir.I64, lo))
	g.b.CondBr(c1, inRange, afterRange)
	g.b.SetBlock(inRange)
	c2 := g.b.ICmp(ir.PredSLE, b64, ir.Const(ir.I64, hi))
	c2z := g.b.ZExt(c2, ir.I64)
	accIn := g.b.Add(acc, c2z)
	g.b.Br(afterRange)
	g.b.SetBlock(afterRange)
	accMerged := g.b.Phi(ir.I64, []ir.Value{acc, accIn}, []*ir.Block{cur, inRange})
	cur = afterRange
	var accV ir.Value = accMerged

	// Magic-byte roadblocks: nested comparisons guarding deeper blocks.
	for mi := 0; mi < g.p.MagicsPerParser; mi++ {
		magic := int64(g.rng.Intn(256))
		if g.p.PlantBug && idx == 0 && mi == 0 {
			// Deterministic outer magic so the planted bug is
			// reachable by the input 0x42 0x42 0x55 0x47.
			magic = 0x42
		}
		hit := f.AddBlock(fmt.Sprintf("magic%d_%d", idx, mi))
		cont := f.AddBlock(fmt.Sprintf("cont%d_%d", idx, mi))
		g.b.SetBlock(cur)
		mc := g.b.ICmp(ir.PredEQ, b64, ir.Const(ir.I64, magic))
		g.b.CondBr(mc, hit, cont)

		g.b.SetBlock(hit)
		var hitAcc ir.Value = g.b.Xor(accV, ir.Const(ir.I64, magic*3+1))
		// Rare printf event (the puts-rewrite site).
		if len(g.msgs) > 0 && mi == 0 && g.rng.Intn(2) == 0 {
			msg := g.msgs[g.rng.Intn(len(g.msgs))]
			g.b.Call(ir.I32, "printf", msg)
		}
		// Update global state.
		slot := g.b.GEP(g.state, ir.Const(ir.I64, int64(g.rng.Intn(64))), 8)
		old := g.b.Load(ir.I64, slot)
		upd := g.b.Add(old, hitAcc)
		g.b.Store(upd, slot)
		// Planted bug: abort when parser 0 sees the magic sequence
		// 0x42 0x55 0x47 ("BUG") at positions 1..3.
		if g.p.PlantBug && idx == 0 && mi == 0 {
			bugChk := f.AddBlock("bugchk")
			bug2 := f.AddBlock("bug2")
			bug3 := f.AddBlock("bug3")
			boom := f.AddBlock("boom")
			afterBug := f.AddBlock("afterbug")
			g.b.SetBlock(hit)
			lenOK := g.b.ICmp(ir.PredSGE, length, ir.Const(ir.I64, 4))
			g.b.CondBr(lenOK, bugChk, afterBug)
			g.b.SetBlock(bugChk)
			p1 := g.b.GEP(data, ir.Const(ir.I64, 1), 1)
			v1 := g.b.Load(ir.I8, p1)
			c1 := g.b.ICmp(ir.PredEQ, v1, ir.Const(ir.I8, 0x42))
			g.b.CondBr(c1, bug2, afterBug)
			g.b.SetBlock(bug2)
			p2 := g.b.GEP(data, ir.Const(ir.I64, 2), 1)
			v2 := g.b.Load(ir.I8, p2)
			cc2 := g.b.ICmp(ir.PredEQ, v2, ir.Const(ir.I8, 0x55))
			g.b.CondBr(cc2, bug3, afterBug)
			g.b.SetBlock(bug3)
			p3 := g.b.GEP(data, ir.Const(ir.I64, 3), 1)
			v3 := g.b.Load(ir.I8, p3)
			cc3 := g.b.ICmp(ir.PredEQ, v3, ir.Const(ir.I8, 0x47))
			g.b.CondBr(cc3, boom, afterBug)
			g.b.SetBlock(boom)
			g.b.Call(ir.Void, "abort")
			g.b.Unreachable()
			g.b.SetBlock(afterBug)
			g.b.Br(cont)
			hit = afterBug
		} else {
			g.b.SetBlock(hit)
			g.b.Br(cont)
		}
		g.b.SetBlock(cont)
		merged := g.b.Phi(ir.I64, []ir.Value{accV, hitAcc}, []*ir.Block{cur, hit})
		accV = merged
		cur = cont
	}

	// Helper calls. Tiny helpers are drawn from this parser's local
	// subset (real programs have per-module static helpers), keeping
	// Odin's bond clusters parser-sized rather than program-sized.
	g.b.SetBlock(cur)
	tiny := helperSubset(g.tinyNames, idx, g.p.Parsers)
	for k := 0; k < g.p.HelperCallsPerIter && len(tiny) > 0; k++ {
		h := tiny[g.rng.Intn(len(tiny))]
		if g.rng.Bool() {
			// Constant argument: inlining + constant propagation
			// folds the whole call away in a whole-cluster build.
			c := g.b.Call(ir.I64, h, ir.Const(ir.I64, int64(g.rng.Intn(100))))
			accV = g.b.Add(accV, c)
		} else {
			accV = g.b.Call(ir.I64, h, accV)
		}
	}
	da := helperSubset(g.daNames, idx, g.p.Parsers)
	if g.rng.Intn(100) < g.p.HelperCallDensity && len(da) > 0 {
		h := da[g.rng.Intn(len(da))]
		accV = g.b.Call(ir.I64, h, accV, ir.Const(ir.I64, 7))
	}
	// Extra straight-line blocks to hit the profile's CFG size.
	for x := 0; x < g.p.ParserLoopBlocks; x++ {
		nb := f.AddBlock(fmt.Sprintf("fill%d_%d", idx, x))
		g.b.Br(nb)
		g.b.SetBlock(nb)
		accV = g.arithBody(accV, int64(x))
	}

	// Loop latch.
	i2 := g.b.Add(iPhi, ir.Const(ir.I64, 1))
	latch := g.b.Block()
	g.b.Br(head)
	iPhi.Operands[1] = i2
	iPhi.Incoming[1] = latch
	accPhi.Operands[1] = accV
	accPhi.Incoming[1] = latch

	g.b.SetBlock(exit)
	g.b.Ret(accPhi)
	return name
}

// emitBigSwitch builds the sqlite3VdbeExec stand-in: one enormous function
// dispatching over opcode bytes.
func (g *gen) emitBigSwitch() string {
	name := "vdbe_exec"
	f := ir.NewFunc(g.m, name, &ir.FuncType{Params: []ir.Type{ir.Ptr, ir.I64}, Ret: ir.I64}, []string{"data", "len"})
	f.Linkage = ir.Internal
	f.NoInline = true
	data, length := f.Params[0], f.Params[1]

	entry := f.AddBlock("entry")
	head := f.AddBlock("head")
	body := f.AddBlock("body")
	latch := f.AddBlock("latch")
	exit := f.AddBlock("exit")

	g.b.SetBlock(entry)
	g.b.Br(head)
	g.b.SetBlock(head)
	iPhi := g.b.Phi(ir.I64, []ir.Value{ir.Const(ir.I64, 0), nil}, []*ir.Block{entry, nil})
	accPhi := g.b.Phi(ir.I64, []ir.Value{ir.Const(ir.I64, 0), nil}, []*ir.Block{entry, nil})
	cond := g.b.ICmp(ir.PredSLT, iPhi, length)
	g.b.CondBr(cond, body, exit)

	g.b.SetBlock(body)
	ptr := g.b.GEP(data, iPhi, 1)
	op := g.b.Load(ir.I8, ptr)
	op64 := g.b.ZExt(op, ir.I64)

	n := g.p.BigSwitchCases
	cases := make([]int64, n)
	targets := make([]*ir.Block, n+1)
	caseBlocks := make([]*ir.Block, n)
	for c := 0; c < n; c++ {
		cases[c] = int64(c)
		caseBlocks[c] = f.AddBlock(fmt.Sprintf("op%d", c))
		targets[c] = caseBlocks[c]
	}
	dflt := f.AddBlock("opdefault")
	targets[n] = dflt
	g.b.Switch(op64, cases, targets)

	var vals []ir.Value
	var blocks []*ir.Block
	for c := 0; c < n; c++ {
		g.b.SetBlock(caseBlocks[c])
		v := g.arithBody(accPhi, int64(c))
		if c%7 == 0 {
			slot := g.b.GEP(g.state, ir.Const(ir.I64, int64(c%64)), 8)
			old := g.b.Load(ir.I64, slot)
			nv := g.b.Add(old, v)
			g.b.Store(nv, slot)
		}
		g.b.Br(latch)
		vals = append(vals, v)
		blocks = append(blocks, caseBlocks[c])
	}
	g.b.SetBlock(dflt)
	dv := g.b.Add(accPhi, ir.Const(ir.I64, 1))
	g.b.Br(latch)
	vals = append(vals, dv)
	blocks = append(blocks, dflt)

	g.b.SetBlock(latch)
	accNext := g.b.Phi(ir.I64, vals, blocks)
	i2 := g.b.Add(iPhi, ir.Const(ir.I64, 1))
	g.b.Br(head)
	iPhi.Operands[1] = i2
	iPhi.Incoming[1] = latch
	accPhi.Operands[1] = accNext
	accPhi.Incoming[1] = latch

	g.b.SetBlock(exit)
	g.b.Ret(accPhi)
	return name
}

func (g *gen) emitAliases(parserNames []string) {
	for i := 0; i < g.p.Aliases && i < len(parserNames); i++ {
		g.m.AddAlias(&ir.Alias{
			Name:    parserNames[i] + "_alias",
			Target:  parserNames[i],
			Linkage: ir.Internal,
		})
	}
}

// emitEntry builds fuzz_target(data, len): dispatch on the first byte to a
// parser (or the big-switch interpreter), fold results into output.
func (g *gen) emitEntry(parserNames []string, interpName string) {
	f := ir.NewFunc(g.m, "fuzz_target", &ir.FuncType{Params: []ir.Type{ir.Ptr, ir.I64}, Ret: ir.I64}, []string{"data", "len"})
	data, length := f.Params[0], f.Params[1]
	entry := f.AddBlock("entry")
	dispatch := f.AddBlock("dispatch")
	empty := f.AddBlock("empty")
	done := f.AddBlock("done")

	g.b.SetBlock(entry)
	c := g.b.ICmp(ir.PredSGE, length, ir.Const(ir.I64, 1))
	g.b.CondBr(c, dispatch, empty)

	g.b.SetBlock(empty)
	g.b.Ret(ir.Const(ir.I64, 0))

	g.b.SetBlock(dispatch)
	b0 := g.b.Load(ir.I8, data)
	b64 := g.b.ZExt(b0, ir.I64)
	nTargets := len(parserNames)
	if interpName != "" {
		nTargets++
	}
	sel := g.b.Bin(ir.OpURem, b64, ir.Const(ir.I64, int64(nTargets)))

	var cases []int64
	var targets []*ir.Block
	var resVals []ir.Value
	var resBlocks []*ir.Block
	callees := append([]string(nil), parserNames...)
	// Route some dispatches through the alias names.
	for i := 0; i < g.p.Aliases && i < len(callees); i++ {
		callees[i] = callees[i] + "_alias"
	}
	if interpName != "" {
		callees = append(callees, interpName)
	}
	for i, callee := range callees {
		blk := f.AddBlock(fmt.Sprintf("case%d", i))
		cases = append(cases, int64(i))
		targets = append(targets, blk)
		g.b.SetBlock(blk)
		r := g.b.Call(ir.I64, callee, data, length)
		g.b.Br(done)
		resVals = append(resVals, r)
		resBlocks = append(resBlocks, g.b.Block())
	}
	fallback := f.AddBlock("fallback")
	targets = append(targets, fallback)
	g.b.SetBlock(dispatch)
	// Reposition: the switch must be the dispatch terminator; the blocks
	// above were emitted already.
	g.b.Switch(sel, cases[:len(cases)-0], targets)

	g.b.SetBlock(fallback)
	g.b.Br(done)
	resVals = append(resVals, ir.Const(ir.I64, 0))
	resBlocks = append(resBlocks, fallback)

	g.b.SetBlock(done)
	res := g.b.Phi(ir.I64, resVals, resBlocks)
	low := g.b.And(res, ir.Const(ir.I64, 0xFF))
	g.b.Call(ir.Void, "write_byte", low)
	g.b.Ret(res)
}
