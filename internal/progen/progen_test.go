package progen

import (
	"testing"

	"odin/internal/interp"
	"odin/internal/ir"
	"odin/internal/toolchain"
	"odin/internal/vm"
)

func TestSuiteGeneratesValidDeterministicModules(t *testing.T) {
	names := map[string]bool{}
	for _, p := range Suite() {
		m := p.Generate()
		if err := ir.Verify(m); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if names[p.Name] {
			t.Fatalf("duplicate profile name %s", p.Name)
		}
		names[p.Name] = true
		// Determinism: generating again yields identical IR.
		m2 := p.Generate()
		if ir.Print(m) != ir.Print(m2) {
			t.Fatalf("%s: generation not deterministic", p.Name)
		}
		if m.LookupFunc("fuzz_target") == nil {
			t.Fatalf("%s: no fuzz_target", p.Name)
		}
	}
	if len(names) != 13 {
		t.Fatalf("suite has %d programs, want 13", len(names))
	}
}

func TestSuiteProgramsExecute(t *testing.T) {
	inputs := [][]byte{
		nil,
		[]byte{0},
		[]byte("hello world"),
		{1, 2, 3, 4, 5, 6, 7, 200, 150, 90},
		[]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"),
	}
	for _, p := range Suite() {
		m := p.Generate()
		for _, in := range inputs {
			ret, out, err := interp.RunProgram(m, in)
			if err != nil {
				t.Fatalf("%s input %v: %v", p.Name, in, err)
			}
			_ = ret
			_ = out
		}
	}
}

// TestSuiteDifferential: every program behaves identically on the
// interpreter and on optimized compiled code.
func TestSuiteDifferential(t *testing.T) {
	inputs := [][]byte{
		[]byte{5},
		[]byte("differential testing input 0123456789"),
		{0x42, 0x55, 0x47, 9, 9, 9, 128, 255},
	}
	for _, p := range Suite() {
		m := p.Generate()
		exe, _, err := toolchain.BuildPreserving(m, 2)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		mach := vm.New(exe)
		for _, in := range inputs {
			wantRet, wantOut, err := interp.RunProgram(m, in)
			if err != nil {
				t.Fatalf("%s: interp: %v", p.Name, err)
			}
			gotRet, gotOut, _, err := vm.RunProgram(mach, in)
			if err != nil {
				t.Fatalf("%s: vm: %v", p.Name, err)
			}
			if gotRet != wantRet || gotOut != wantOut {
				t.Fatalf("%s input %v: vm (%d,%q) != interp (%d,%q)",
					p.Name, in, gotRet, gotOut, wantRet, wantOut)
			}
		}
	}
}

func TestSqliteHasBigSwitch(t *testing.T) {
	p, ok := ByName("sqlite")
	if !ok {
		t.Fatal("sqlite profile missing")
	}
	m := p.Generate()
	f := m.LookupFunc("vdbe_exec")
	if f == nil {
		t.Fatal("no vdbe_exec")
	}
	if len(f.Blocks) < p.BigSwitchCases {
		t.Fatalf("vdbe_exec blocks = %d, want >= %d", len(f.Blocks), p.BigSwitchCases)
	}
	// It must dominate the program's size, like sqlite3VdbeExec does.
	if f.NumInstrs()*2 < m.NumInstrs()/2 {
		t.Logf("vdbe_exec %d instrs of %d total", f.NumInstrs(), m.NumInstrs())
	}
}

func TestJsonMostHelpersEliminated(t *testing.T) {
	p, _ := ByName("json")
	m := p.Generate()
	before := len(m.Funcs)
	exe, _, err := toolchain.BuildPreserving(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	after := len(exe.Funcs)
	if after >= before {
		t.Fatalf("whole-program optimization removed nothing: %d -> %d", before, after)
	}
	// The paper's json: 27 of 544 functions survive. Ours: most of the
	// uncalled/tiny helpers must be gone.
	if float64(after) > 0.6*float64(before) {
		t.Fatalf("too few functions eliminated: %d -> %d", before, after)
	}
}

func TestDemoBugReachable(t *testing.T) {
	m := Demo().Generate()
	ir.MustVerify(m)
	// Find the magic byte that routes to parser 0 and triggers magic0_0:
	// parser selection is b0 % nTargets == 0, and the bug additionally
	// needs data[0] to equal parser 0's first magic. Scan all first
	// bytes; the planted bug must be reachable for at least one.
	found := false
	for b0 := 0; b0 < 256 && !found; b0++ {
		in := []byte{byte(b0), 0x42, 0x55, 0x47}
		_, _, err := interp.RunProgram(m, in)
		if err != nil && err.Error() == "trap: abort() called" {
			found = true
		}
	}
	if !found {
		t.Fatal("planted bug unreachable")
	}
}

func TestProgramSizesRoughlyOrdered(t *testing.T) {
	sizes := map[string]int{}
	for _, p := range Suite() {
		sizes[p.Name] = p.Generate().NumInstrs()
	}
	if sizes["sqlite"] <= sizes["woff2"] {
		t.Fatalf("sqlite (%d) should dwarf woff2 (%d)", sizes["sqlite"], sizes["woff2"])
	}
	t.Logf("program sizes (IR instrs): %v", sizes)
}
