package progen

import "odin/internal/ir"

// Suite returns the 13-program evaluation suite: every program occurring in
// both Google fuzzer-test-suite and FuzzBench, as selected by the paper
// (§5), with shape profiles tuned to reproduce each target's qualitative
// behaviour in the experiments.
func Suite() []Profile {
	return []Profile{
		{
			// Large font library: many parsers, moderate IPO.
			Name: "freetype2", Seed: 1, Parsers: 10, ParserLoopBlocks: 3,
			TinyHelpers: 18, UncalledHelpers: 10, DeadArgHelpers: 8,
			HelperCallDensity: 60, HelperCallsPerIter: 3, ConstTables: 6, PrintfStrings: 2,
			Aliases: 1, MagicsPerParser: 4, JunkArith: 3,
		},
		{
			// Self-contained DCT arithmetic: hot loops rarely cross
			// function boundaries, so blind partitioning barely hurts
			// (best case in Figure 10).
			Name: "libjpeg", Seed: 2, Parsers: 6, ParserLoopBlocks: 4,
			TinyHelpers: 8, DeadArgHelpers: 2, HelperCallDensity: 5, HelperCallsPerIter: 0,
			ConstTables: 4, MagicsPerParser: 3, JunkArith: 4,
		},
		{
			// Projection math: arithmetic chains, some helpers.
			Name: "proj4", Seed: 3, Parsers: 5, ParserLoopBlocks: 5,
			TinyHelpers: 10, DeadArgHelpers: 4, HelperCallDensity: 40, HelperCallsPerIter: 1,
			ConstTables: 2, MagicsPerParser: 2, JunkArith: 5,
		},
		{
			Name: "libpng", Seed: 4, Parsers: 6, ParserLoopBlocks: 3,
			TinyHelpers: 10, UncalledHelpers: 4, DeadArgHelpers: 5,
			HelperCallDensity: 50, HelperCallsPerIter: 2, ConstTables: 4, PrintfStrings: 2,
			Aliases: 1, MagicsPerParser: 4, JunkArith: 3,
		},
		{
			// Regex engine: many small functions, dense call graph.
			Name: "re2", Seed: 5, Parsers: 12, ParserLoopBlocks: 2,
			TinyHelpers: 24, UncalledHelpers: 8, DeadArgHelpers: 10,
			HelperCallDensity: 70, HelperCallsPerIter: 4, ConstTables: 2, MagicsPerParser: 3,
			JunkArith: 2,
		},
		{
			// Shaping engine with pervasive cross-function hot paths:
			// the worst case for blind partitioning (187% in Figure 10).
			Name: "harfbuzz", Seed: 6, Parsers: 8, ParserLoopBlocks: 3,
			TinyHelpers: 20, DeadArgHelpers: 12, HelperCallDensity: 95, HelperCallsPerIter: 7,
			ConstTables: 5, PrintfStrings: 1, Aliases: 1,
			MagicsPerParser: 4, JunkArith: 2,
		},
		{
			// SQL engine: one enormous opcode interpreter
			// (sqlite3VdbeExec: 163 opcodes, 2058 blocks in the paper),
			// the worst-case recompilation fragment of Figure 12.
			Name: "sqlite", Seed: 7, Parsers: 6, ParserLoopBlocks: 3,
			TinyHelpers: 14, UncalledHelpers: 6, DeadArgHelpers: 6,
			HelperCallDensity: 50, HelperCallsPerIter: 2, ConstTables: 4, PrintfStrings: 1,
			BigSwitchCases: 120, MagicsPerParser: 3, JunkArith: 3,
		},
		{
			// Header-only C++ template library: hundreds of tiny
			// functions, most eliminated whole-program (27 of 544
			// survive in the paper).
			Name: "json", Seed: 8, Parsers: 4, ParserLoopBlocks: 2,
			TinyHelpers: 40, UncalledHelpers: 60, DeadArgHelpers: 6,
			HelperCallDensity: 80, HelperCallsPerIter: 4, ConstTables: 2, MagicsPerParser: 2,
			JunkArith: 2,
		},
		{
			// The classic XML parser target (also the Figure 3 program).
			Name: "libxml2", Seed: 9, Parsers: 10, ParserLoopBlocks: 4,
			TinyHelpers: 16, UncalledHelpers: 8, DeadArgHelpers: 8,
			HelperCallDensity: 55, HelperCallsPerIter: 3, ConstTables: 5, PrintfStrings: 2,
			Aliases: 1, MagicsPerParser: 6, JunkArith: 3,
		},
		{
			Name: "vorbis", Seed: 10, Parsers: 5, ParserLoopBlocks: 5,
			TinyHelpers: 8, DeadArgHelpers: 4, HelperCallDensity: 30, HelperCallsPerIter: 1,
			ConstTables: 3, MagicsPerParser: 2, JunkArith: 5,
		},
		{
			// Color management: table-driven transforms.
			Name: "lcms", Seed: 11, Parsers: 5, ParserLoopBlocks: 3,
			TinyHelpers: 8, DeadArgHelpers: 4, HelperCallDensity: 35, HelperCallsPerIter: 1,
			ConstTables: 8, MagicsPerParser: 2, JunkArith: 3,
		},
		{
			Name: "woff2", Seed: 12, Parsers: 4, ParserLoopBlocks: 2,
			TinyHelpers: 6, UncalledHelpers: 2, DeadArgHelpers: 3,
			HelperCallDensity: 45, HelperCallsPerIter: 2, ConstTables: 3, PrintfStrings: 1,
			MagicsPerParser: 3, JunkArith: 2,
		},
		{
			// Certificate parsing: magic-heavy format validation.
			Name: "x509", Seed: 13, Parsers: 6, ParserLoopBlocks: 2,
			TinyHelpers: 8, UncalledHelpers: 2, DeadArgHelpers: 5,
			HelperCallDensity: 50, HelperCallsPerIter: 2, ConstTables: 3, MagicsPerParser: 8,
			JunkArith: 2,
		},
	}
}

// ByName returns the suite profile with the given name.
func ByName(name string) (Profile, bool) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Demo returns a small program with a planted bug for the fuzzing examples:
// parser 0 aborts on the input sequence <magic> 'B' 'U' 'G'.
func Demo() Profile {
	return Profile{
		Name: "demo", Seed: 99, Parsers: 3, ParserLoopBlocks: 2,
		TinyHelpers: 6, DeadArgHelpers: 3, HelperCallDensity: 60, HelperCallsPerIter: 2,
		ConstTables: 2, MagicsPerParser: 2, JunkArith: 2, PlantBug: true,
	}
}

// GenerateSuite produces all 13 modules.
func GenerateSuite() []*ir.Module {
	var out []*ir.Module
	for _, p := range Suite() {
		out = append(out, p.Generate())
	}
	return out
}
