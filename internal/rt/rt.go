// Package rt provides the runtime environment shared by the IR interpreter
// and the machine-code execution engine: a flat byte-addressable memory, an
// output stream, and a registry of builtin (external) functions such as the
// libc stubs and the instrumentation hooks that fuzzing tools install.
package rt

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"odin/internal/telemetry"
)

// Standard address-space layout. Both execution engines place program data
// in the same regions so generated programs behave identically, provided
// they never print raw pointers.
const (
	// NullGuard: addresses below this trap, catching null dereferences.
	NullGuard = 0x1000
	// GlobalBase is where global variables start.
	GlobalBase = 0x10000
	// InputBase is where the fuzz input buffer is copied.
	InputBase = 0x400000
	// InputMax is the maximum input size.
	InputMax = 0x10000
	// StackTop is the initial stack pointer (stack grows down).
	StackTop = 0x800000
	// MemSize is the total memory size.
	MemSize = 0x800000
)

// TrapError reports an execution fault (bad memory access, abort,
// unreachable, division by zero).
type TrapError struct {
	Reason string
}

func (e *TrapError) Error() string { return "trap: " + e.Reason }

// Trapf constructs a TrapError.
func Trapf(format string, args ...interface{}) *TrapError {
	return &TrapError{Reason: fmt.Sprintf(format, args...)}
}

// Builtin is an external function implemented by the host. Arguments and
// result are 64-bit machine words.
type Builtin func(e *Env, args []int64) (int64, error)

// Env is one execution's mutable state.
type Env struct {
	Mem      []byte
	Out      bytes.Buffer
	Builtins map[string]Builtin

	// Steps counts abstract work units: IR instructions for the
	// interpreter, machine instructions for the VM (in addition to the
	// VM's cycle accounting).
	Steps int64
	// StepLimit aborts runaway executions when positive.
	StepLimit int64

	// Hits, when non-nil, receives per-probe-site hit counts via CountHit.
	// Instrumentation hook builtins call CountHit on every firing, so the
	// vector must be allocation- and lock-free; a nil Hits makes CountHit a
	// single nil check.
	Hits *telemetry.HitVec
}

// CountHit records one firing of probe site id on the attached hit vector;
// a no-op when no vector is attached.
func (e *Env) CountHit(id int64) { e.Hits.Hit(id) }

// NewEnv allocates a fresh environment with the standard builtins.
func NewEnv() *Env {
	e := &Env{
		Mem:       make([]byte, MemSize),
		Builtins:  make(map[string]Builtin),
		StepLimit: 200_000_000,
	}
	RegisterStdlib(e)
	return e
}

// Step consumes one work unit, returning a trap when the limit is exceeded.
func (e *Env) Step() error {
	e.Steps++
	if e.StepLimit > 0 && e.Steps > e.StepLimit {
		return Trapf("step limit %d exceeded", e.StepLimit)
	}
	return nil
}

// CheckAddr validates an n-byte access at addr.
func (e *Env) CheckAddr(addr int64, n int64) error {
	if addr < NullGuard || addr+n > int64(len(e.Mem)) {
		return Trapf("out-of-bounds %d-byte access at %#x", n, addr)
	}
	return nil
}

// Load reads a size-byte little-endian value at addr, sign-extended.
func (e *Env) Load(addr int64, size int64) (int64, error) {
	if err := e.CheckAddr(addr, size); err != nil {
		return 0, err
	}
	switch size {
	case 1:
		return int64(int8(e.Mem[addr])), nil
	case 2:
		return int64(int16(binary.LittleEndian.Uint16(e.Mem[addr:]))), nil
	case 4:
		return int64(int32(binary.LittleEndian.Uint32(e.Mem[addr:]))), nil
	case 8:
		return int64(binary.LittleEndian.Uint64(e.Mem[addr:])), nil
	}
	return 0, Trapf("bad load size %d", size)
}

// Store writes a size-byte little-endian value at addr.
func (e *Env) Store(addr int64, size int64, v int64) error {
	if err := e.CheckAddr(addr, size); err != nil {
		return err
	}
	switch size {
	case 1:
		e.Mem[addr] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(e.Mem[addr:], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(e.Mem[addr:], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(e.Mem[addr:], uint64(v))
	default:
		return Trapf("bad store size %d", size)
	}
	return nil
}

// CString reads a NUL-terminated string at addr.
func (e *Env) CString(addr int64) (string, error) {
	if err := e.CheckAddr(addr, 1); err != nil {
		return "", err
	}
	end := addr
	for end < int64(len(e.Mem)) && e.Mem[end] != 0 {
		end++
	}
	if end == int64(len(e.Mem)) {
		return "", Trapf("unterminated string at %#x", addr)
	}
	return string(e.Mem[addr:end]), nil
}

// WriteInput copies the fuzz input into the input region and returns its
// address and length.
func (e *Env) WriteInput(data []byte) (ptr, length int64, err error) {
	if len(data) > InputMax {
		return 0, 0, Trapf("input too large: %d", len(data))
	}
	copy(e.Mem[InputBase:], data)
	return InputBase, int64(len(data)), nil
}

// RegisterStdlib installs the libc-stub builtins every program may call.
func RegisterStdlib(e *Env) {
	e.Builtins["print_i64"] = func(e *Env, args []int64) (int64, error) {
		fmt.Fprintf(&e.Out, "%d\n", args[0])
		return 0, nil
	}
	e.Builtins["write_byte"] = func(e *Env, args []int64) (int64, error) {
		e.Out.WriteByte(byte(args[0]))
		return 0, nil
	}
	e.Builtins["puts"] = func(e *Env, args []int64) (int64, error) {
		s, err := e.CString(args[0])
		if err != nil {
			return 0, err
		}
		e.Out.WriteString(s)
		e.Out.WriteByte('\n')
		return int64(len(s) + 1), nil
	}
	// printf is a fputs-style stub: it writes the format string verbatim.
	// This is all the instruction-combining printf("x\n") -> puts("x")
	// rewrite needs to be observable and semantics-preserving.
	e.Builtins["printf"] = func(e *Env, args []int64) (int64, error) {
		s, err := e.CString(args[0])
		if err != nil {
			return 0, err
		}
		e.Out.WriteString(s)
		return int64(len(s)), nil
	}
	e.Builtins["abort"] = func(e *Env, args []int64) (int64, error) {
		return 0, Trapf("abort() called")
	}
	e.Builtins["memcmp"] = func(e *Env, args []int64) (int64, error) {
		a, b, n := args[0], args[1], args[2]
		if err := e.CheckAddr(a, n); err != nil {
			return 0, err
		}
		if err := e.CheckAddr(b, n); err != nil {
			return 0, err
		}
		return int64(bytes.Compare(e.Mem[a:a+n], e.Mem[b:b+n])), nil
	}
	e.Builtins["memset"] = func(e *Env, args []int64) (int64, error) {
		p, c, n := args[0], args[1], args[2]
		if err := e.CheckAddr(p, n); err != nil {
			return 0, err
		}
		for i := int64(0); i < n; i++ {
			e.Mem[p+i] = byte(c)
		}
		return p, nil
	}
	e.Builtins["memcpy"] = func(e *Env, args []int64) (int64, error) {
		d, s, n := args[0], args[1], args[2]
		if err := e.CheckAddr(d, n); err != nil {
			return 0, err
		}
		if err := e.CheckAddr(s, n); err != nil {
			return 0, err
		}
		copy(e.Mem[d:d+n], e.Mem[s:s+n])
		return d, nil
	}
}

// StdlibSigs describes the libc-stub signatures so program builders can
// declare them: name -> (param count, has result). All params/results are
// 64-bit words at the ABI level.
var StdlibSigs = map[string]struct {
	Params    int
	HasResult bool
}{
	"print_i64":  {1, false},
	"write_byte": {1, false},
	"puts":       {1, true},
	"printf":     {1, true},
	"abort":      {0, false},
	"memcmp":     {3, true},
	"memset":     {3, true},
	"memcpy":     {3, true},
}
