package rt

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestLoadStoreRoundTrip(t *testing.T) {
	e := NewEnv()
	prop := func(addr uint32, v int64, szSel uint8) bool {
		sizes := []int64{1, 2, 4, 8}
		sz := sizes[int(szSel)%4]
		a := NullGuard + int64(addr)%(MemSize-NullGuard-8)
		if err := e.Store(a, sz, v); err != nil {
			return false
		}
		got, err := e.Load(a, sz)
		if err != nil {
			return false
		}
		// Loads sign-extend from the stored width.
		var want int64
		switch sz {
		case 1:
			want = int64(int8(v))
		case 2:
			want = int64(int16(v))
		case 4:
			want = int64(int32(v))
		default:
			want = v
		}
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsChecks(t *testing.T) {
	e := NewEnv()
	cases := []struct {
		addr, size int64
	}{
		{0, 8},             // null page
		{NullGuard - 1, 1}, // below guard
		{MemSize - 4, 8},   // straddles the end
		{MemSize + 100, 1}, // past the end
	}
	for _, c := range cases {
		if _, err := e.Load(c.addr, c.size); err == nil {
			t.Errorf("load at %#x size %d accepted", c.addr, c.size)
		}
		if err := e.Store(c.addr, c.size, 1); err == nil {
			t.Errorf("store at %#x size %d accepted", c.addr, c.size)
		}
	}
	if _, err := e.Load(GlobalBase, 3); err == nil {
		t.Error("bad load size accepted")
	}
}

func TestCString(t *testing.T) {
	e := NewEnv()
	copy(e.Mem[GlobalBase:], "hello\x00")
	s, err := e.CString(GlobalBase)
	if err != nil || s != "hello" {
		t.Fatalf("got %q, %v", s, err)
	}
	if _, err := e.CString(0); err == nil {
		t.Fatal("null cstring accepted")
	}
	// Unterminated string at the very end of memory.
	for i := MemSize - 16; i < MemSize; i++ {
		e.Mem[i] = 'x'
	}
	if _, err := e.CString(MemSize - 16); err == nil {
		t.Fatal("unterminated cstring accepted")
	}
}

func TestWriteInput(t *testing.T) {
	e := NewEnv()
	p, n, err := e.WriteInput([]byte("abc"))
	if err != nil || p != InputBase || n != 3 {
		t.Fatalf("p=%#x n=%d err=%v", p, n, err)
	}
	if string(e.Mem[InputBase:InputBase+3]) != "abc" {
		t.Fatal("input not copied")
	}
	if _, _, err := e.WriteInput(make([]byte, InputMax+1)); err == nil {
		t.Fatal("oversized input accepted")
	}
}

func TestStepLimit(t *testing.T) {
	e := NewEnv()
	e.StepLimit = 3
	for i := 0; i < 3; i++ {
		if err := e.Step(); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	if err := e.Step(); err == nil {
		t.Fatal("limit not enforced")
	}
}

func TestStdlibBuiltins(t *testing.T) {
	e := NewEnv()
	copy(e.Mem[GlobalBase:], "hi\x00")

	if _, err := e.Builtins["print_i64"](e, []int64{-42}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Builtins["write_byte"](e, []int64{65}); err != nil {
		t.Fatal(err)
	}
	n, err := e.Builtins["puts"](e, []int64{GlobalBase})
	if err != nil || n != 3 {
		t.Fatalf("puts: %d, %v", n, err)
	}
	n, err = e.Builtins["printf"](e, []int64{GlobalBase})
	if err != nil || n != 2 {
		t.Fatalf("printf: %d, %v", n, err)
	}
	if got := e.Out.String(); got != "-42\nAhi\nhi" {
		t.Fatalf("output = %q", got)
	}
	if _, err := e.Builtins["abort"](e, nil); err == nil || !strings.Contains(err.Error(), "abort") {
		t.Fatalf("abort: %v", err)
	}

	// memset/memcpy/memcmp.
	p := int64(GlobalBase + 64)
	if _, err := e.Builtins["memset"](e, []int64{p, 7, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Builtins["memcpy"](e, []int64{p + 8, p, 4}); err != nil {
		t.Fatal(err)
	}
	r, err := e.Builtins["memcmp"](e, []int64{p, p + 8, 4})
	if err != nil || r != 0 {
		t.Fatalf("memcmp equal: %d, %v", r, err)
	}
	e.Mem[p+8] = 9
	r, _ = e.Builtins["memcmp"](e, []int64{p, p + 8, 4})
	if r >= 0 {
		t.Fatalf("memcmp ordering: %d", r)
	}
	if _, err := e.Builtins["memcpy"](e, []int64{0, p, 4}); err == nil {
		t.Fatal("memcpy to null accepted")
	}
}

func TestTrapError(t *testing.T) {
	err := Trapf("bad %s at %d", "thing", 7)
	if err.Error() != "trap: bad thing at 7" {
		t.Fatalf("got %q", err.Error())
	}
}
