package rt

import (
	"testing"

	"odin/internal/telemetry"
)

// BenchmarkCountHit measures probe-hit counting with a hit vector attached —
// the per-firing cost every instrumented execution pays. Compare against
// BenchmarkCountHitNil (telemetry off) for the overhead budget (<5% of the
// hook call; the hook itself also crosses a builtin dispatch).
func BenchmarkCountHit(b *testing.B) {
	env := &Env{Hits: telemetry.NewRegistry().HitVec("odin_probe_hits_total", 256)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.CountHit(int64(i & 255))
	}
}

// BenchmarkCountHitNil is the telemetry-off baseline: a single nil check.
func BenchmarkCountHitNil(b *testing.B) {
	env := &Env{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		env.CountHit(int64(i & 255))
	}
}

func TestCountHit(t *testing.T) {
	// Nil-safe without a vector.
	(&Env{}).CountHit(3)

	v := telemetry.NewRegistry().HitVec("odin_probe_hits_total", 4)
	env := &Env{Hits: v}
	env.CountHit(0)
	env.CountHit(3)
	env.CountHit(3)
	env.CountHit(99) // out of range -> overflow cell
	if v.Value(0) != 1 || v.Value(3) != 2 {
		t.Fatalf("per-site counts = %d,%d, want 1,2", v.Value(0), v.Value(3))
	}
	if v.Total() != 4 {
		t.Fatalf("total = %d, want 4", v.Total())
	}
}
