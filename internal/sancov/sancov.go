// Package sancov implements the SanitizerCoverage baseline: compiler-based
// static block-coverage instrumentation with 8-bit counters.
//
// Faithful to the original's design point (paper §2.1, §5.1), the pass runs
// at the very end of the optimization pipeline — instrumenting *after*
// optimization keeps the probes cheap and the optimizer unhindered, but the
// instrumented blocks are the optimizer's blocks, not the program's: merged,
// folded, and rearranged (the correctness compromise §2.2 demonstrates).
// Probes are never removed; the overhead is paid for the whole campaign.
package sancov

import (
	"fmt"

	"odin/internal/codegen"
	"odin/internal/ir"
	"odin/internal/link"
	"odin/internal/obj"
	"odin/internal/opt"
	"odin/internal/toolchain"
	"odin/internal/vm"
)

// CountersSym is the counter array's symbol name.
const CountersSym = "__sancov_counters"

// BlockInfo identifies one instrumented (post-optimization) block.
type BlockInfo struct {
	Func  string
	Block string
}

// Meta describes an instrumented build.
type Meta struct {
	NumProbes int
	Blocks    []BlockInfo
	// CounterAddr is the data address of the counter array after linking.
	CounterAddr int64
}

// Build optimizes a clone of m at the given level, instruments every
// surviving basic block with an inline 8-bit counter, and links the result.
func Build(m *ir.Module, level int) (*link.Executable, *Meta, error) {
	clone, _ := ir.CloneModule(m)
	opt.Optimize(clone, &opt.Options{Level: level})
	meta, err := Instrument(clone)
	if err != nil {
		return nil, nil, err
	}
	o, err := codegen.CompileModule(clone)
	if err != nil {
		return nil, nil, err
	}
	exe, err := link.Link([]*obj.Object{o}, toolchain.StdBuiltins())
	if err != nil {
		return nil, nil, err
	}
	addr, ok := exe.DataAddr[CountersSym]
	if !ok {
		return nil, nil, fmt.Errorf("sancov: counter array not linked")
	}
	meta.CounterAddr = addr
	return exe, meta, nil
}

// Instrument adds the counter array and one counter increment at the head
// of every basic block of every defined function in m (in place).
func Instrument(m *ir.Module) (*Meta, error) {
	if m.Lookup(CountersSym) != nil {
		return nil, fmt.Errorf("sancov: module already instrumented")
	}
	meta := &Meta{}
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		for _, b := range f.Blocks {
			meta.Blocks = append(meta.Blocks, BlockInfo{Func: f.Name, Block: b.Name})
		}
	}
	meta.NumProbes = len(meta.Blocks)
	n := int64(meta.NumProbes)
	if n == 0 {
		n = 1
	}
	counters := m.AddGlobal(&ir.GlobalVar{
		Name: CountersSym,
		Elem: &ir.ArrayType{Elem: ir.I8, Len: n},
	})
	id := int64(0)
	bld := ir.NewBuilder()
	for _, f := range m.Funcs {
		if f.IsDecl() {
			continue
		}
		for _, b := range f.Blocks {
			bld.SetInsertBefore(b, len(b.Phis()))
			bld.CounterInc(counters, id)
			id++
		}
	}
	return meta, ir.Verify(m)
}

// Coverage reads the counter array out of a machine that ran the build.
func Coverage(mach *vm.Machine, meta *Meta) []byte {
	out := make([]byte, meta.NumProbes)
	copy(out, mach.Env.Mem[meta.CounterAddr:meta.CounterAddr+int64(meta.NumProbes)])
	return out
}

// CoveredBlocks returns how many probes have fired at least once.
func CoveredBlocks(mach *vm.Machine, meta *Meta) int {
	n := 0
	for _, c := range Coverage(mach, meta) {
		if c != 0 {
			n++
		}
	}
	return n
}

// ResetCoverage zeroes the counters between inputs.
func ResetCoverage(mach *vm.Machine, meta *Meta) {
	for i := int64(0); i < int64(meta.NumProbes); i++ {
		mach.Env.Mem[meta.CounterAddr+i] = 0
	}
}
