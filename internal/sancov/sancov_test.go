package sancov

import (
	"testing"

	"odin/internal/interp"
	"odin/internal/ir"
	"odin/internal/irtext"
	"odin/internal/toolchain"
	"odin/internal/vm"
)

const progSrc = `
declare func @write_byte(%b: i64) -> void
func @classify(%b: i64) -> i64 internal noinline {
entry:
  %c1 = icmp sge i64 %b, 97
  condbr %c1, upper, low
upper:
  %c2 = icmp sle i64 %b, 122
  condbr %c2, yes, low
yes:
  ret i64 1
low:
  ret i64 0
}
func @fuzz_target(%data: ptr, %len: i64) -> i64 {
entry:
  br head
head:
  %i = phi i64 [0, entry], [%i2, next]
  %acc = phi i64 [0, entry], [%acc2, next]
  %c = icmp slt i64 %i, %len
  condbr %c, body, exit
body:
  %p = gep %data, %i, scale 1
  %b = load i8, %p
  %b64 = zext i8 %b to i64
  %r = call i64 @classify(i64 %b64)
  %acc2 = add i64 %acc, %r
  br next
next:
  %i2 = add i64 %i, 1
  br head
exit:
  call void @write_byte(i64 %acc)
  ret i64 %acc
}
`

func TestSanCovBuildAndCoverage(t *testing.T) {
	m := irtext.MustParse("p", progSrc)
	ir.MustVerify(m)
	exe, meta, err := Build(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumProbes == 0 {
		t.Fatal("no probes")
	}
	mach := vm.New(exe)
	input := []byte("ab!z")
	ret, out, _, err := vm.RunProgram(mach, input)
	if err != nil {
		t.Fatal(err)
	}
	// Reference semantics on the pristine module.
	wantRet, wantOut, err := interp.RunProgram(m, input)
	if err != nil {
		t.Fatal(err)
	}
	if ret != wantRet || out != wantOut {
		t.Fatalf("instrumented run diverged: ret=%d/%d out=%q/%q", ret, wantRet, out, wantOut)
	}
	cov := Coverage(mach, meta)
	if CoveredBlocks(mach, meta) == 0 {
		t.Fatal("no coverage recorded")
	}
	// Counters count executions, not just hits.
	max := byte(0)
	for _, c := range cov {
		if c > max {
			max = c
		}
	}
	if max < 2 {
		t.Fatalf("expected a counter >= 2 from the loop, got max %d", max)
	}
	ResetCoverage(mach, meta)
	if CoveredBlocks(mach, meta) != 0 {
		t.Fatal("reset did not clear counters")
	}
}

// TestSanCovInstrumentsPostOptBlocks: the probe count must equal the
// optimized CFG's block count, which is smaller than the source CFG's —
// the correctness compromise the paper describes.
func TestSanCovInstrumentsPostOptBlocks(t *testing.T) {
	src := `
func @islower(%chr: i8) -> i1 {
test_lb:
  %cmp1 = icmp sge i8 %chr, 97
  condbr %cmp1, test_ub, end
test_ub:
  %cmp2 = icmp sle i8 %chr, 122
  br end
end:
  %r = phi i1 [0, test_lb], [%cmp2, test_ub]
  ret i1 %r
}
`
	m := irtext.MustParse("p", src)
	_, meta, err := Build(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if meta.NumProbes != 1 {
		t.Fatalf("probes = %d, want 1 (optimizer folds the diamond before instrumentation)", meta.NumProbes)
	}
	// Source CFG has 3 blocks: post-opt instrumentation cannot
	// distinguish the three input classes anymore.
	if n := len(m.LookupFunc("islower").Blocks); n != 3 {
		t.Fatalf("pristine blocks = %d, want 3", n)
	}
}

func TestSanCovOverheadPositiveButModest(t *testing.T) {
	m := irtext.MustParse("p", progSrc)
	input := []byte("hello world this is a moderately long input 123")

	plain, _, err := toolchain.BuildPreserving(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	machP := vm.New(plain)
	_, _, base, err := vm.RunProgram(machP, input)
	if err != nil {
		t.Fatal(err)
	}

	exe, _, err := Build(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	machI := vm.New(exe)
	_, _, instr, err := vm.RunProgram(machI, input)
	if err != nil {
		t.Fatal(err)
	}
	if instr <= base {
		t.Fatalf("instrumentation free? base=%d instr=%d", base, instr)
	}
	ratio := float64(instr) / float64(base)
	if ratio > 1.8 {
		t.Fatalf("sancov overhead ratio %.2f too high (want modest, <1.8)", ratio)
	}
}

func TestSanCovRejectsDoubleInstrumentation(t *testing.T) {
	m := irtext.MustParse("p", progSrc)
	if _, err := Instrument(m); err != nil {
		t.Fatal(err)
	}
	if _, err := Instrument(m); err == nil {
		t.Fatal("double instrumentation accepted")
	}
}
