package serve

import (
	"sort"
	"sync"
	"time"

	"odin/internal/telemetry"
)

// AdmissionOptions tunes the fleet admission ladder. Every request passes
// three gates before reaching a shard's queue: the tenant's token bucket
// (rate fairness), the tenant's failure breaker (hostile-tenant
// containment), and the global in-flight cap (fleet overload). Each gate
// sheds with 429 + Retry-After rather than queueing, so pressure never
// crosses tenant boundaries.
type AdmissionOptions struct {
	// TenantRPS is each tenant's sustained request rate (tokens per
	// second). 0 means DefTenantRPS; negative disables the bucket.
	TenantRPS float64
	// TenantBurst is the bucket capacity (0 = DefTenantBurst).
	TenantBurst float64
	// MaxInFlight caps concurrently admitted requests fleet-wide (0 =
	// DefMaxInFlight; negative disables the cap).
	MaxInFlight int
	// FailThreshold opens a tenant's failure breaker after this many
	// consecutive failed probe operations (0 = DefFailThreshold; negative
	// disables the breaker).
	FailThreshold int
	// FailBackoff is the breaker's initial open window, doubled per
	// consecutive trip up to FailMaxBackoff.
	FailBackoff    time.Duration
	FailMaxBackoff time.Duration
}

// Admission ladder defaults.
const (
	DefTenantRPS     = 200.0
	DefTenantBurst   = 100.0
	DefMaxInFlight   = 256
	DefFailThreshold = 3
)

// Default failure-breaker windows.
var (
	DefFailBackoff    = 250 * time.Millisecond
	DefFailMaxBackoff = 5 * time.Second
)

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.TenantRPS == 0 {
		o.TenantRPS = DefTenantRPS
	}
	if o.TenantBurst == 0 {
		o.TenantBurst = DefTenantBurst
	}
	if o.MaxInFlight == 0 {
		o.MaxInFlight = DefMaxInFlight
	}
	if o.FailThreshold == 0 {
		o.FailThreshold = DefFailThreshold
	}
	if o.FailBackoff <= 0 {
		o.FailBackoff = DefFailBackoff
	}
	if o.FailMaxBackoff <= 0 {
		o.FailMaxBackoff = DefFailMaxBackoff
	}
	return o
}

// Shed reasons, also the `reason` label on odin_serve_shed_total.
const (
	ShedRateLimit     = "rate_limit"
	ShedTenantBreaker = "tenant_breaker"
	ShedOverload      = "overload"
)

// Shed is an admission rejection: why, and when a retry is worthwhile.
type Shed struct {
	Reason     string
	RetryAfter time.Duration
}

// tenantState is one tenant's admission bookkeeping: a token bucket and a
// consecutive-failure breaker, both lazily created on first contact.
type tenantState struct {
	// Token bucket (monotonic refill at rps up to burst).
	tokens   float64
	lastFill time.Time

	// Failure breaker.
	fails     int
	openUntil time.Time
	backoff   time.Duration

	// Counters for the fleet snapshot.
	admitted uint64
	shed     uint64
	failed   uint64
	trips    uint64
}

// admission is the fleet gatekeeper. One mutex covers all tenants: every
// operation is a handful of float ops, so contention is negligible next to
// the rebuilds behind it.
type admission struct {
	opts AdmissionOptions

	mu       sync.Mutex
	tenants  map[string]*tenantState
	inFlight int

	// Fleet-registry instruments (nil-safe).
	mAdmitted *telemetry.Counter
	mInFlight *telemetry.Gauge
	shedVecMu sync.Mutex
	shedVec   map[string]*telemetry.Counter
	reg       *telemetry.Registry
}

func newAdmission(opts AdmissionOptions, reg *telemetry.Registry) *admission {
	reg.Describe("odin_serve_admitted_total", "Requests admitted past the fleet admission ladder.")
	reg.Describe("odin_serve_shed_total", "Requests shed by the admission ladder, by tenant and reason.")
	reg.Describe("odin_serve_inflight", "Requests currently admitted and in flight.")
	return &admission{
		opts:      opts.withDefaults(),
		tenants:   map[string]*tenantState{},
		mAdmitted: reg.Counter("odin_serve_admitted_total"),
		mInFlight: reg.Gauge("odin_serve_inflight"),
		shedVec:   map[string]*telemetry.Counter{},
		reg:       reg,
	}
}

// shedCounter returns the per-(tenant, reason) shed counter, cached so the
// hot path registers each label set once.
func (a *admission) shedCounter(tenant, reason string) *telemetry.Counter {
	key := tenant + "\x00" + reason
	a.shedVecMu.Lock()
	defer a.shedVecMu.Unlock()
	c, ok := a.shedVec[key]
	if !ok {
		c = a.reg.Counter("odin_serve_shed_total", "tenant", tenant, "reason", reason)
		a.shedVec[key] = c
	}
	return c
}

func (a *admission) tenant(name string) *tenantState {
	t, ok := a.tenants[name]
	if !ok {
		t = &tenantState{tokens: a.opts.TenantBurst, lastFill: time.Now(), backoff: a.opts.FailBackoff}
		a.tenants[name] = t
	}
	return t
}

// admit runs the ladder for one request. On success it returns a release
// function that MUST be called when the request finishes; on rejection it
// returns the shed verdict.
func (a *admission) admit(tenant string) (release func(), shed *Shed) {
	a.mu.Lock()
	t := a.tenant(tenant)
	now := time.Now()

	// Gate 1: token bucket.
	if a.opts.TenantRPS > 0 {
		t.tokens += now.Sub(t.lastFill).Seconds() * a.opts.TenantRPS
		if t.tokens > a.opts.TenantBurst {
			t.tokens = a.opts.TenantBurst
		}
		t.lastFill = now
		if t.tokens < 1 {
			wait := time.Duration((1 - t.tokens) / a.opts.TenantRPS * float64(time.Second))
			t.shed++
			a.mu.Unlock()
			a.shedCounter(tenant, ShedRateLimit).Inc()
			return nil, &Shed{Reason: ShedRateLimit, RetryAfter: ceilSecond(wait)}
		}
		t.tokens--
	}

	// Gate 2: tenant failure breaker. A tripped tenant is shed outright —
	// its poison traffic never reaches a shard queue, so it cannot trip the
	// shard breaker that healthy tenants depend on.
	if a.opts.FailThreshold > 0 && now.Before(t.openUntil) {
		wait := t.openUntil.Sub(now)
		t.shed++
		a.mu.Unlock()
		a.shedCounter(tenant, ShedTenantBreaker).Inc()
		return nil, &Shed{Reason: ShedTenantBreaker, RetryAfter: ceilSecond(wait)}
	}

	// Gate 3: global in-flight cap.
	if a.opts.MaxInFlight > 0 && a.inFlight >= a.opts.MaxInFlight {
		t.shed++
		a.mu.Unlock()
		a.shedCounter(tenant, ShedOverload).Inc()
		return nil, &Shed{Reason: ShedOverload, RetryAfter: time.Second}
	}
	a.inFlight++
	t.admitted++
	a.mu.Unlock()

	a.mAdmitted.Inc()
	a.mInFlight.Set(int64(a.InFlight()))
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.inFlight--
			n := a.inFlight
			a.mu.Unlock()
			a.mInFlight.Set(int64(n))
		})
	}, nil
}

// report feeds a probe operation's outcome into the tenant's failure
// breaker: failures attributable to the tenant (instrument errors,
// quarantines) count toward the trip threshold; any success resets it.
func (a *admission) report(tenant string, ok bool) {
	if a.opts.FailThreshold <= 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	t := a.tenant(tenant)
	if ok {
		t.fails = 0
		t.backoff = a.opts.FailBackoff
		return
	}
	t.failed++
	t.fails++
	if t.fails >= a.opts.FailThreshold {
		t.openUntil = time.Now().Add(t.backoff)
		t.trips++
		t.fails = 0
		t.backoff *= 2
		if t.backoff > a.opts.FailMaxBackoff {
			t.backoff = a.opts.FailMaxBackoff
		}
	}
}

// InFlight reports the currently admitted request count.
func (a *admission) InFlight() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight
}

// TenantStats is one tenant's row in the fleet snapshot.
type TenantStats struct {
	Tenant   string `json:"tenant"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Failed   uint64 `json:"failed"`
	// BreakerTrips counts failure-breaker openings; BreakerOpenMS is the
	// remaining open window (0 when closed).
	BreakerTrips  uint64  `json:"breaker_trips"`
	BreakerOpenMS float64 `json:"breaker_open_ms"`
}

// snapshot returns per-tenant admission stats sorted by tenant name.
func (a *admission) snapshot() []TenantStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := time.Now()
	out := make([]TenantStats, 0, len(a.tenants))
	for name, t := range a.tenants {
		ts := TenantStats{
			Tenant:       name,
			Admitted:     t.admitted,
			Shed:         t.shed,
			Failed:       t.failed,
			BreakerTrips: t.trips,
		}
		if t.openUntil.After(now) {
			ts.BreakerOpenMS = float64(t.openUntil.Sub(now)) / float64(time.Millisecond)
		}
		out = append(out, ts)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// ceilSecond rounds a wait up to whole seconds with a 1s floor — the HTTP
// Retry-After grain.
func ceilSecond(d time.Duration) time.Duration {
	if d <= time.Second {
		return time.Second
	}
	if rem := d % time.Second; rem != 0 {
		d += time.Second - rem
	}
	return d
}
