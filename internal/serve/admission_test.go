package serve

import (
	"testing"
	"time"

	"odin/internal/telemetry"
)

func TestAdmissionTokenBucket(t *testing.T) {
	a := newAdmission(AdmissionOptions{
		TenantRPS: 1, TenantBurst: 2, MaxInFlight: -1, FailThreshold: -1,
	}, telemetry.NewRegistry())

	for i := 0; i < 2; i++ {
		rel, shed := a.admit("acme")
		if shed != nil {
			t.Fatalf("burst admit %d shed: %+v", i, shed)
		}
		rel()
	}
	rel, shed := a.admit("acme")
	if shed == nil {
		rel()
		t.Fatal("third admit should exhaust the burst")
	}
	if shed.Reason != ShedRateLimit || shed.RetryAfter < time.Second {
		t.Fatalf("shed = %+v", shed)
	}
	// Tenants are independent: a fresh tenant still has its burst.
	if rel, shed := a.admit("other"); shed != nil {
		t.Fatalf("independent tenant shed: %+v", shed)
	} else {
		rel()
	}
}

func TestAdmissionInFlightCap(t *testing.T) {
	a := newAdmission(AdmissionOptions{
		TenantRPS: -1, MaxInFlight: 2, FailThreshold: -1,
	}, telemetry.NewRegistry())

	rel1, shed := a.admit("a")
	if shed != nil {
		t.Fatal(shed)
	}
	rel2, shed := a.admit("b")
	if shed != nil {
		t.Fatal(shed)
	}
	if _, shed := a.admit("c"); shed == nil || shed.Reason != ShedOverload {
		t.Fatalf("over-cap admit: %+v", shed)
	}
	rel1()
	rel1() // release is idempotent
	if a.InFlight() != 1 {
		t.Fatalf("in flight = %d, want 1", a.InFlight())
	}
	rel3, shed := a.admit("c")
	if shed != nil {
		t.Fatalf("post-release admit: %+v", shed)
	}
	rel3()
	rel2()
	if a.InFlight() != 0 {
		t.Fatalf("in flight = %d, want 0", a.InFlight())
	}
}

func TestAdmissionTenantBreaker(t *testing.T) {
	a := newAdmission(AdmissionOptions{
		TenantRPS: -1, MaxInFlight: -1,
		FailThreshold: 2, FailBackoff: 50 * time.Millisecond, FailMaxBackoff: 200 * time.Millisecond,
	}, telemetry.NewRegistry())

	admitOK := func(tenant string) bool {
		rel, shed := a.admit(tenant)
		if shed != nil {
			return false
		}
		rel()
		return true
	}

	// Two consecutive failures trip the breaker.
	a.report("evil", false)
	if !admitOK("evil") {
		t.Fatal("one failure must not trip")
	}
	a.report("evil", false)
	rel, shed := a.admit("evil")
	if shed == nil {
		rel()
		t.Fatal("two failures must trip the breaker")
	}
	if shed.Reason != ShedTenantBreaker {
		t.Fatalf("shed = %+v", shed)
	}
	// Other tenants are untouched.
	if !admitOK("good") {
		t.Fatal("breaker must be tenant-scoped")
	}
	// The window expires, and a success resets the failure count.
	time.Sleep(60 * time.Millisecond)
	if !admitOK("evil") {
		t.Fatal("breaker window should have expired")
	}
	a.report("evil", true)
	a.report("evil", false)
	if !admitOK("evil") {
		t.Fatal("success must reset the consecutive-failure count")
	}

	snap := a.snapshot()
	var evil *TenantStats
	for i := range snap {
		if snap[i].Tenant == "evil" {
			evil = &snap[i]
		}
	}
	if evil == nil || evil.BreakerTrips != 1 || evil.Failed != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
}
