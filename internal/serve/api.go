package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"odin/internal/core"
)

// TenantHeader names the request header carrying the tenant identity.
// Absent means TenantAnonymous — admission still applies, under one shared
// identity.
const (
	TenantHeader    = "X-Odin-Tenant"
	TenantAnonymous = "anonymous"
)

// routes assembles the versioned control-plane mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("GET /v1/shards", s.handleShards)
	mux.HandleFunc("GET /v1/shards/{shard}/functions", s.handleFunctions)
	mux.HandleFunc("POST /v1/shards/{shard}/probes", s.handleProbeAdd)
	mux.HandleFunc("POST /v1/shards/{shard}/probes/{id}/{action}", s.handleProbeAction)
	mux.HandleFunc("POST /v1/shards/{shard}/sync", s.handleSync)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return TenantAnonymous
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError emits the JSON error envelope; retryAfter > 0 also sets the
// Retry-After header (whole seconds, floored at 1).
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	e := apiError{Error: msg, Code: code}
	if retryAfter > 0 {
		retryAfter = ceilSecond(retryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
		e.RetryAfterS = retryAfter.Seconds()
	}
	writeJSON(w, status, e)
}

// writeShed maps an admission rejection to 429 + Retry-After.
func writeShed(w http.ResponseWriter, shed *Shed) {
	writeError(w, http.StatusTooManyRequests, "shed",
		"admission shed: "+shed.Reason, shed.RetryAfter)
}

// writeAcquireError maps a slot-acquisition failure: a dead shard fails
// fast with a long Retry-After (recovery needs an operator), a context
// expiry means the request sat out the whole failover window.
func writeAcquireError(w http.ResponseWriter, sh *shard, err error) {
	if errors.Is(err, ErrShardDead) {
		writeError(w, http.StatusServiceUnavailable, "dead",
			fmt.Sprintf("shard %s is dead: %v", sh.name, err), deadRetryAfter)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "closed",
		"request expired waiting for shard: "+err.Error(), 0)
}

// writeSubmitError maps supervisor admission errors — the ones returned
// before a ticket exists.
func (s *Server) writeSubmitError(w http.ResponseWriter, sh *shard, slot *engineSlot, err error) {
	var qe *core.ProbeQuarantinedError
	switch {
	case errors.Is(err, core.ErrCircuitOpen):
		writeError(w, http.StatusServiceUnavailable, "breaker_open",
			fmt.Sprintf("shard %s circuit breaker open", sh.name), slot.sup.BreakerRetryAfter())
	case errors.Is(err, core.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "shed",
			fmt.Sprintf("shard %s admission queue full", sh.name), time.Second)
	case errors.Is(err, core.ErrSupervisorClosed):
		writeError(w, http.StatusServiceUnavailable, "closed",
			fmt.Sprintf("shard %s is shutting down", sh.name), 0)
	case errors.As(err, &qe):
		writeError(w, http.StatusUnprocessableEntity, "quarantined",
			err.Error(), 0)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "closed",
			"request cancelled during admission", 0)
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), 0)
	}
}

// writeTicketError maps a committed generation's failure — the ticket
// resolved, but against this request.
func writeTicketError(w http.ResponseWriter, err error) {
	var qe *core.ProbeQuarantinedError
	if errors.As(err, &qe) {
		writeError(w, http.StatusUnprocessableEntity, "quarantined", err.Error(), 0)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", err.Error(), 0)
}

// retryableFailover reports whether an operation that failed with err
// should be parked and re-admitted: the slot it ran on was swapped out (or
// is being swapped out) by a failover, so the failure is the old engine's
// teardown, not the request's fault. The caller loops back through acquire,
// which parks on the swap gate.
func retryableFailover(sh *shard, slot *engineSlot, err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, core.ErrSupervisorClosed) && sh.stale(slot)
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Fleet())
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Shards())
}

// handleFunctions lists a shard's instrumentable functions — the valid
// probe targets.
func (s *Server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	sh := s.shardOf(w, r)
	if sh == nil {
		return
	}
	writeJSON(w, http.StatusOK, sh.funcs)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.agg.WritePrometheus(w)
}

// shardOf resolves the {shard} path segment, writing 404 on a miss.
func (s *Server) shardOf(w http.ResponseWriter, r *http.Request) *shard {
	name := r.PathValue("shard")
	sh, ok := s.byName[name]
	if !ok {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("unknown shard %q", name), 0)
		return nil
	}
	return sh
}

// handleProbeAdd is POST /v1/shards/{shard}/probes: admit, register the
// probe, wait out its activation generation, and attribute the outcome to
// the tenant's failure breaker. The committed op is journaled and forwarded
// to the hot spare. A request that lands in a failover window parks on the
// shard gate and is re-admitted against the new slot — delayed, not
// dropped.
func (s *Server) handleProbeAdd(w http.ResponseWriter, r *http.Request) {
	sh := s.shardOf(w, r)
	if sh == nil {
		return
	}
	tenant := tenantOf(r)
	release, shed := s.adm.admit(tenant)
	if shed != nil {
		writeShed(w, shed)
		return
	}
	defer release()

	var spec ProbeSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid probe spec: "+err.Error(), 0)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	id := sh.nextProbeID()
	for {
		slot, err := sh.acquire(ctx)
		if err != nil {
			writeAcquireError(w, sh, err)
			return
		}
		engID, tk, err := slot.sup.AddProbeCtx(ctx, buildProbe(spec, sh.site.Add(1)))
		if err != nil {
			if retryableFailover(sh, slot, err) {
				continue
			}
			s.writeSubmitError(w, sh, slot, err)
			return
		}
		sh.record(slot, id, engID, tenant, spec)
		res, err := tk.Wait(ctx)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "closed",
				"timed out waiting for generation: "+err.Error(), 0)
			return
		}
		if retryableFailover(sh, slot, res.Err) {
			continue
		}
		s.adm.report(tenant, res.Err == nil)
		if res.Err != nil {
			writeTicketError(w, res.Err)
			return
		}
		sh.committed(slot, journalOp{Op: jopAdd, ID: id, Tenant: tenant, Spec: &spec})
		writeJSON(w, http.StatusOK, ProbeResult{
			ID: id, Gen: res.Gen, Coalesced: res.Coalesced, Salvaged: res.Salvaged,
		})
		return
	}
}

// handleProbeAction is POST /v1/shards/{shard}/probes/{id}/{action} with
// action one of enable, remove, change. Tenants can only act on probes
// they own; foreign or unknown IDs read as not found. IDs are serve-level:
// stable across engine restarts and hot-spare promotions.
func (s *Server) handleProbeAction(w http.ResponseWriter, r *http.Request) {
	sh := s.shardOf(w, r)
	if sh == nil {
		return
	}
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "probe id must be an integer", 0)
		return
	}
	action := r.PathValue("action")
	var jop string
	switch action {
	case "enable":
		jop = jopEnable
	case "remove":
		jop = jopRemove
	case "change":
		jop = jopChange
	default:
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("unknown action %q (want enable, remove, or change)", action), 0)
		return
	}
	tenant := tenantOf(r)
	rec, ok := sh.lookupProbe(id)
	if !ok || rec.Tenant != tenant {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no probe %d for tenant %q on shard %s", id, tenant, sh.name), 0)
		return
	}
	release, shed := s.adm.admit(tenant)
	if shed != nil {
		writeShed(w, shed)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	for {
		slot, err := sh.acquire(ctx)
		if err != nil {
			writeAcquireError(w, sh, err)
			return
		}
		// Re-resolve the engine ID each attempt: a failover rewrites it.
		rec, ok := sh.lookupProbe(id)
		if !ok {
			writeError(w, http.StatusNotFound, "not_found",
				fmt.Sprintf("no probe %d on shard %s", id, sh.name), 0)
			return
		}
		var tk *core.Ticket
		switch action {
		case "enable":
			tk, err = slot.sup.EnableProbeCtx(ctx, rec.EngID)
		case "remove":
			tk, err = slot.sup.RemoveProbeCtx(ctx, rec.EngID)
		case "change":
			tk, err = slot.sup.MarkChangedCtx(ctx, rec.EngID)
		}
		if err != nil {
			if retryableFailover(sh, slot, err) {
				continue
			}
			s.writeSubmitError(w, sh, slot, err)
			return
		}
		res, err := tk.Wait(ctx)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "closed",
				"timed out waiting for generation: "+err.Error(), 0)
			return
		}
		if retryableFailover(sh, slot, res.Err) {
			continue
		}
		s.adm.report(tenant, res.Err == nil)
		if res.Err != nil {
			writeTicketError(w, res.Err)
			return
		}
		sh.committed(slot, journalOp{Op: jop, ID: id, Tenant: tenant})
		writeJSON(w, http.StatusOK, ProbeResult{
			ID: id, Gen: res.Gen, Coalesced: res.Coalesced, Salvaged: res.Salvaged,
		})
		return
	}
}

// handleSync is POST /v1/shards/{shard}/sync: a generation barrier over
// everything enqueued before it. Sync outcomes are not attributed to the
// tenant breaker — a failed generation at a barrier is the shard's story,
// not the caller's. Syncs are not journaled (they carry no state).
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	sh := s.shardOf(w, r)
	if sh == nil {
		return
	}
	release, shed := s.adm.admit(tenantOf(r))
	if shed != nil {
		writeShed(w, shed)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	for {
		slot, err := sh.acquire(ctx)
		if err != nil {
			writeAcquireError(w, sh, err)
			return
		}
		tk, err := slot.sup.SyncCtx(ctx)
		if err != nil {
			if retryableFailover(sh, slot, err) {
				continue
			}
			s.writeSubmitError(w, sh, slot, err)
			return
		}
		res, err := tk.Wait(ctx)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "closed",
				"timed out waiting for generation: "+err.Error(), 0)
			return
		}
		if retryableFailover(sh, slot, res.Err) {
			continue
		}
		if res.Err != nil {
			writeTicketError(w, res.Err)
			return
		}
		writeJSON(w, http.StatusOK, ProbeResult{Gen: res.Gen, Coalesced: res.Coalesced})
		return
	}
}
