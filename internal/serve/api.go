package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"odin/internal/core"
)

// TenantHeader names the request header carrying the tenant identity.
// Absent means TenantAnonymous — admission still applies, under one shared
// identity.
const (
	TenantHeader    = "X-Odin-Tenant"
	TenantAnonymous = "anonymous"
)

// routes assembles the versioned control-plane mux.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/fleet", s.handleFleet)
	mux.HandleFunc("GET /v1/shards", s.handleShards)
	mux.HandleFunc("GET /v1/shards/{shard}/functions", s.handleFunctions)
	mux.HandleFunc("POST /v1/shards/{shard}/probes", s.handleProbeAdd)
	mux.HandleFunc("POST /v1/shards/{shard}/probes/{id}/{action}", s.handleProbeAction)
	mux.HandleFunc("POST /v1/shards/{shard}/sync", s.handleSync)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func tenantOf(r *http.Request) string {
	if t := r.Header.Get(TenantHeader); t != "" {
		return t
	}
	return TenantAnonymous
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError emits the JSON error envelope; retryAfter > 0 also sets the
// Retry-After header (whole seconds, floored at 1).
func writeError(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	e := apiError{Error: msg, Code: code}
	if retryAfter > 0 {
		retryAfter = ceilSecond(retryAfter)
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
		e.RetryAfterS = retryAfter.Seconds()
	}
	writeJSON(w, status, e)
}

// writeShed maps an admission rejection to 429 + Retry-After.
func writeShed(w http.ResponseWriter, shed *Shed) {
	writeError(w, http.StatusTooManyRequests, "shed",
		"admission shed: "+shed.Reason, shed.RetryAfter)
}

// writeSubmitError maps supervisor admission errors — the ones returned
// before a ticket exists.
func (s *Server) writeSubmitError(w http.ResponseWriter, sh *shard, err error) {
	var qe *core.ProbeQuarantinedError
	switch {
	case errors.Is(err, core.ErrCircuitOpen):
		writeError(w, http.StatusServiceUnavailable, "breaker_open",
			fmt.Sprintf("shard %s circuit breaker open", sh.name), sh.sup.BreakerRetryAfter())
	case errors.Is(err, core.ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, "shed",
			fmt.Sprintf("shard %s admission queue full", sh.name), time.Second)
	case errors.Is(err, core.ErrSupervisorClosed):
		writeError(w, http.StatusServiceUnavailable, "closed",
			fmt.Sprintf("shard %s is shutting down", sh.name), 0)
	case errors.As(err, &qe):
		writeError(w, http.StatusUnprocessableEntity, "quarantined",
			err.Error(), 0)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "closed",
			"request cancelled during admission", 0)
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), 0)
	}
}

// writeTicketError maps a committed generation's failure — the ticket
// resolved, but against this request.
func writeTicketError(w http.ResponseWriter, err error) {
	var qe *core.ProbeQuarantinedError
	if errors.As(err, &qe) {
		writeError(w, http.StatusUnprocessableEntity, "quarantined", err.Error(), 0)
		return
	}
	writeError(w, http.StatusInternalServerError, "internal", err.Error(), 0)
}

func (s *Server) handleFleet(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Fleet())
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Shards())
}

// handleFunctions lists a shard's instrumentable functions — the valid
// probe targets.
func (s *Server) handleFunctions(w http.ResponseWriter, r *http.Request) {
	sh := s.shardOf(w, r)
	if sh == nil {
		return
	}
	writeJSON(w, http.StatusOK, sh.funcs)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.agg.WritePrometheus(w)
}

// shardOf resolves the {shard} path segment, writing 404 on a miss.
func (s *Server) shardOf(w http.ResponseWriter, r *http.Request) *shard {
	name := r.PathValue("shard")
	sh, ok := s.byName[name]
	if !ok {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("unknown shard %q", name), 0)
		return nil
	}
	return sh
}

// handleProbeAdd is POST /v1/shards/{shard}/probes: admit, register the
// probe, wait out its activation generation, and attribute the outcome to
// the tenant's failure breaker.
func (s *Server) handleProbeAdd(w http.ResponseWriter, r *http.Request) {
	sh := s.shardOf(w, r)
	if sh == nil {
		return
	}
	tenant := tenantOf(r)
	release, shed := s.adm.admit(tenant)
	if shed != nil {
		writeShed(w, shed)
		return
	}
	defer release()

	var spec ProbeSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "invalid probe spec: "+err.Error(), 0)
		return
	}
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	id, tk, err := sh.sup.AddProbeCtx(ctx, buildProbe(spec, sh.site.Add(1)))
	if err != nil {
		s.writeSubmitError(w, sh, err)
		return
	}
	sh.record(id, tenant, spec)
	res, err := tk.Wait(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "closed",
			"timed out waiting for generation: "+err.Error(), 0)
		return
	}
	s.adm.report(tenant, res.Err == nil)
	if res.Err != nil {
		writeTicketError(w, res.Err)
		return
	}
	writeJSON(w, http.StatusOK, ProbeResult{
		ID: id, Gen: res.Gen, Coalesced: res.Coalesced, Salvaged: res.Salvaged,
	})
}

// handleProbeAction is POST /v1/shards/{shard}/probes/{id}/{action} with
// action one of enable, remove, change. Tenants can only act on probes
// they own; foreign or unknown IDs read as not found.
func (s *Server) handleProbeAction(w http.ResponseWriter, r *http.Request) {
	sh := s.shardOf(w, r)
	if sh == nil {
		return
	}
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "probe id must be an integer", 0)
		return
	}
	action := r.PathValue("action")
	switch action {
	case "enable", "remove", "change":
	default:
		writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("unknown action %q (want enable, remove, or change)", action), 0)
		return
	}
	tenant := tenantOf(r)
	if sh.tenantOf(id) != tenant {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no probe %d for tenant %q on shard %s", id, tenant, sh.name), 0)
		return
	}
	release, shed := s.adm.admit(tenant)
	if shed != nil {
		writeShed(w, shed)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	var tk *core.Ticket
	switch action {
	case "enable":
		tk, err = sh.sup.EnableProbeCtx(ctx, id)
	case "remove":
		tk, err = sh.sup.RemoveProbeCtx(ctx, id)
	case "change":
		tk, err = sh.sup.MarkChangedCtx(ctx, id)
	}
	if err != nil {
		s.writeSubmitError(w, sh, err)
		return
	}
	res, err := tk.Wait(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "closed",
			"timed out waiting for generation: "+err.Error(), 0)
		return
	}
	s.adm.report(tenant, res.Err == nil)
	if res.Err != nil {
		writeTicketError(w, res.Err)
		return
	}
	writeJSON(w, http.StatusOK, ProbeResult{
		ID: id, Gen: res.Gen, Coalesced: res.Coalesced, Salvaged: res.Salvaged,
	})
}

// handleSync is POST /v1/shards/{shard}/sync: a generation barrier over
// everything enqueued before it. Sync outcomes are not attributed to the
// tenant breaker — a failed generation at a barrier is the shard's story,
// not the caller's.
func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	sh := s.shardOf(w, r)
	if sh == nil {
		return
	}
	release, shed := s.adm.admit(tenantOf(r))
	if shed != nil {
		writeShed(w, shed)
		return
	}
	defer release()

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	tk, err := sh.sup.SyncCtx(ctx)
	if err != nil {
		s.writeSubmitError(w, sh, err)
		return
	}
	res, err := tk.Wait(ctx)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "closed",
			"timed out waiting for generation: "+err.Error(), 0)
		return
	}
	if res.Err != nil {
		writeTicketError(w, res.Err)
		return
	}
	writeJSON(w, http.StatusOK, ProbeResult{Gen: res.Gen, Coalesced: res.Coalesced})
}
