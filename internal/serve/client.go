package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

// Client is a thin typed wrapper over the control-plane API, used by
// odin-ctl and the serve-storm bench driver.
type Client struct {
	// Base is the daemon's root URL, e.g. "http://127.0.0.1:9180".
	Base string
	// Tenant is sent as the X-Odin-Tenant header ("" = anonymous).
	Tenant string
	// HTTP overrides the transport (nil = a client with a 60s timeout).
	HTTP *http.Client
}

// APIError is a non-2xx control-plane response.
type APIError struct {
	Status     int
	Code       string
	Msg        string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serve: %d %s: %s", e.Status, e.Code, e.Msg)
}

// Temporary reports whether the error is a shed/backpressure verdict worth
// retrying after RetryAfter.
func (e *APIError) Temporary() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 60 * time.Second}
}

// do runs one request and decodes the JSON response into out (skipped when
// out is nil). Non-2xx responses return *APIError.
func (c *Client) do(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.Base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set(TenantHeader, c.Tenant)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		apiErr := &APIError{Status: resp.StatusCode}
		var env apiError
		if json.NewDecoder(resp.Body).Decode(&env) == nil {
			apiErr.Code = env.Code
			apiErr.Msg = env.Error
		}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Fleet fetches the fleet snapshot.
func (c *Client) Fleet() (FleetSnapshot, error) {
	var snap FleetSnapshot
	err := c.do(http.MethodGet, "/v1/fleet", nil, &snap)
	return snap, err
}

// Shards lists the hosted shards.
func (c *Client) Shards() ([]ShardInfo, error) {
	var out []ShardInfo
	err := c.do(http.MethodGet, "/v1/shards", nil, &out)
	return out, err
}

// Functions lists a shard's instrumentable functions.
func (c *Client) Functions(shard string) ([]string, error) {
	var out []string
	err := c.do(http.MethodGet, "/v1/shards/"+shard+"/functions", nil, &out)
	return out, err
}

// AddProbe registers and activates a probe on a shard.
func (c *Client) AddProbe(shard string, spec ProbeSpec) (ProbeResult, error) {
	var res ProbeResult
	err := c.do(http.MethodPost, "/v1/shards/"+shard+"/probes", spec, &res)
	return res, err
}

// ProbeAction applies enable, remove, or change to an owned probe.
func (c *Client) ProbeAction(shard string, id int64, action string) (ProbeResult, error) {
	var res ProbeResult
	err := c.do(http.MethodPost,
		fmt.Sprintf("/v1/shards/%s/probes/%d/%s", shard, id, action), nil, &res)
	return res, err
}

// Sync runs a generation barrier on a shard.
func (c *Client) Sync(shard string) (ProbeResult, error) {
	var res ProbeResult
	err := c.do(http.MethodPost, "/v1/shards/"+shard+"/sync", nil, &res)
	return res, err
}

// Metrics fetches the fleet-aggregated Prometheus exposition.
func (c *Client) Metrics() (string, error) {
	req, err := http.NewRequest(http.MethodGet, c.Base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", &APIError{Status: resp.StatusCode, Code: "metrics", Msg: resp.Status}
	}
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
