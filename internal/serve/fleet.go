package serve

import (
	"odin/internal/core"
	"odin/internal/persist"
)

// APIVersion is the wire version prefix of the control-plane routes.
const APIVersion = "v1"

// ShardStatus is one shard's row in the fleet snapshot: what it hosts, how
// its admission queue and breaker are doing, its persist-tier health, and
// the lifecycle manager's view — watchdog state, hot-spare presence, and
// the failover history.
type ShardStatus struct {
	Name    string `json:"name"`
	Program string `json:"program"`
	// State is the watchdog classification: healthy, degraded, wedged,
	// recovering, or dead.
	State string `json:"state"`
	// ActiveProbes counts currently active probes on the shard.
	ActiveProbes int `json:"active_probes"`
	// WarmHits is the persist-tier hit count observed during the boot
	// build — non-zero means the shard warm-started from its cache.
	WarmHits uint64 `json:"warm_hits"`
	// Supervisor carries queue depth, breaker state, coalescing ratio, and
	// quarantine inventory straight from the shard's supervisor.
	Supervisor core.SupervisorStats `json:"supervisor"`
	// Health is the cheap supervisor health snapshot the watchdog
	// classifies from: queue age, breaker open duration, generation in
	// flight, loop panics.
	Health core.SupervisorHealth `json:"health"`
	// BreakerRetryAfterMS is how long callers should back off while the
	// shard breaker is open (0 when closed).
	BreakerRetryAfterMS float64 `json:"breaker_retry_after_ms,omitempty"`
	// Persist is the shard's cache-tier counters, absent when the shard
	// runs without persistence.
	Persist *persist.Stats `json:"persist,omitempty"`
	// ReadOnly marks a slot serving from a read-only persist tier (a
	// promoted hot spare, or a shard that lost the writer-lock race).
	ReadOnly bool `json:"read_only,omitempty"`
	// Replica reports whether a hot spare is currently standing by.
	Replica bool `json:"replica,omitempty"`
	// Restarts and Promotions count recovery-ladder actions over the
	// shard's lifetime; Failovers is the bounded recent-event history.
	Restarts   uint64          `json:"restarts,omitempty"`
	Promotions uint64          `json:"promotions,omitempty"`
	Failovers  []FailoverEvent `json:"failovers,omitempty"`
	// JournalRecords and JournalDropped describe the tenant-probe journal:
	// how many committed ops it holds, and how many appends were lost to
	// persistent write failure.
	JournalRecords int    `json:"journal_records,omitempty"`
	JournalDropped uint64 `json:"journal_dropped,omitempty"`
}

// FleetSnapshot is the GET /v1/fleet document: every shard's status plus
// the fleet admission picture. It is the serve-layer analogue of the PR 3
// /debug/odin engine snapshot, aggregated across shards.
type FleetSnapshot struct {
	Shards []ShardStatus `json:"shards"`
	// Tenants is the per-tenant admission ledger (admitted/shed/failed,
	// failure-breaker state), so one tenant's view of the fleet includes
	// whether it — or a neighbour — is being contained.
	Tenants []TenantStats `json:"tenants,omitempty"`
	// InFlight is the number of requests currently inside the fleet
	// in-flight cap.
	InFlight int `json:"in_flight"`
}

// ShardInfo is one row of GET /v1/shards: just enough to route.
type ShardInfo struct {
	Name    string `json:"name"`
	Program string `json:"program"`
}

// ProbeResult is the response body of probe and sync operations: the probe
// ID (add only), the generation that applied the change, and how the
// supervisor handled the request. Probe IDs are serve-level — stable across
// engine restarts and hot-spare promotions, unlike the engine's own probe
// IDs.
type ProbeResult struct {
	ID  int64  `json:"id"`
	Gen uint64 `json:"gen"`
	// Coalesced is how many requests shared the rebuild generation that
	// resolved this one; Salvaged reports it was rescued by poison-probe
	// bisection.
	Coalesced int  `json:"coalesced,omitempty"`
	Salvaged  bool `json:"salvaged,omitempty"`
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
	// Code is a stable machine-readable discriminator: bad_request,
	// not_found, quarantined, shed, breaker_open, closed, dead, internal.
	Code string `json:"code"`
	// RetryAfterS mirrors the Retry-After header for JSON-only clients.
	RetryAfterS float64 `json:"retry_after_s,omitempty"`
}
