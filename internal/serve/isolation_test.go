package serve

import (
	"errors"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestTenantIsolation is the hostile-tenant containment test: one tenant
// storms poison probes at shard alpha while healthy tenants keep committing
// counter probes on shards alpha and beta. Isolation holds when (a) every
// healthy request eventually commits — zero dropped tickets, retries on
// shed/backpressure included — (b) healthy tail latency stays bounded, and
// (c) the hostile tenant is demonstrably contained by its failure breaker
// rather than by the shard breaker everyone shares.
func TestTenantIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-tenant storm")
	}
	srv, _, client := newTestServer(t, Options{
		Shards: []ShardSpec{
			{Name: "alpha", Module: testModule(t, 8)},
			{Name: "beta", Module: testModule(t, 8)},
		},
		Admission: AdmissionOptions{
			// Rate limiting off: the test wants the failure breaker, not the
			// bucket, to do the containing.
			TenantRPS:      -1,
			FailThreshold:  2,
			FailBackoff:    100 * time.Millisecond,
			FailMaxBackoff: time.Second,
		},
	})

	const healthyOps = 24
	type tenantRun struct {
		tenant  string
		shard   string
		lats    []time.Duration
		dropped int
	}
	runs := []*tenantRun{
		{tenant: "good-a", shard: "alpha"},
		{tenant: "good-b", shard: "beta"},
	}

	var hostileWG, healthyWG sync.WaitGroup
	// Hostile tenant: fire poison probes at alpha as fast as the control
	// plane lets it, until the healthy tenants are done.
	done := make(chan struct{})
	hostileShed := 0
	hostileWG.Add(1)
	go func() {
		defer hostileWG.Done()
		c := client("evil")
		for {
			select {
			case <-done:
				return
			default:
			}
			_, err := c.AddProbe("alpha", ProbeSpec{Func: "f0", Kind: KindPoison})
			var ae *APIError
			if errors.As(err, &ae) && ae.Status == 429 {
				hostileShed++
				time.Sleep(10 * time.Millisecond)
			}
		}
	}()

	// Healthy tenants: add/remove/enable cycles; retry shed and
	// backpressure verdicts, count a request dropped only if it never
	// commits.
	for _, run := range runs {
		run := run
		healthyWG.Add(1)
		go func() {
			defer healthyWG.Done()
			c := client(run.tenant)
			for i := 0; i < healthyOps; i++ {
				fn := []string{"f1", "f2", "f3", "f4"}[i%4]
				start := time.Now()
				committed := false
				for attempt := 0; attempt < 50; attempt++ {
					res, err := c.AddProbe(run.shard, ProbeSpec{Func: fn})
					if err == nil {
						// Clean up so active probes don't accumulate
						// unboundedly; removal failures are tolerated.
						c.ProbeAction(run.shard, res.ID, "remove")
						committed = true
						break
					}
					var ae *APIError
					if errors.As(err, &ae) && ae.Temporary() {
						time.Sleep(20 * time.Millisecond)
						continue
					}
					t.Errorf("%s: non-retryable error: %v", run.tenant, err)
					break
				}
				if !committed {
					run.dropped++
					continue
				}
				run.lats = append(run.lats, time.Since(start))
			}
		}()
	}

	// Wait for the healthy tenants, then stop the hostile storm.
	healthyWG.Wait()
	close(done)
	hostileWG.Wait()

	for _, run := range runs {
		if run.dropped != 0 {
			t.Errorf("%s: %d healthy requests dropped", run.tenant, run.dropped)
		}
		sort.Slice(run.lats, func(i, j int) bool { return run.lats[i] < run.lats[j] })
		if n := len(run.lats); n > 0 {
			p99 := run.lats[n*99/100]
			if p99 > 30*time.Second {
				t.Errorf("%s: healthy p99 %v unbounded", run.tenant, p99)
			}
			t.Logf("%s on %s: p50=%v p99=%v", run.tenant, run.shard,
				run.lats[n/2], p99)
		}
	}

	// Containment evidence: the hostile tenant's failure breaker tripped
	// (serve-layer shedding), and the shards' own breakers stayed closed so
	// healthy traffic never saw fleet-wide fail-fast.
	snap := srv.Fleet()
	var evil *TenantStats
	for i := range snap.Tenants {
		if snap.Tenants[i].Tenant == "evil" {
			evil = &snap.Tenants[i]
		}
	}
	if evil == nil || evil.BreakerTrips == 0 {
		t.Errorf("hostile tenant breaker never tripped: %+v", snap.Tenants)
	}
	for _, sh := range snap.Shards {
		if sh.Supervisor.Breaker == "open" {
			t.Errorf("shard %s breaker open at end of storm", sh.Name)
		}
	}
	t.Logf("hostile: shed %d times, breaker trips %d", hostileShed, evil.BreakerTrips)
}
