package serve

import (
	"encoding/json"
	"sync"
	"sync/atomic"

	"odin/internal/persist"
)

// The tenant-probe journal is the shard's durable record of committed probe
// operations: an append-only persist.Log of JSON-encoded journalOp records,
// one per committed add/enable/remove/change. Replaying it reconstructs the
// shard's probe state on a fresh engine — the mechanism behind crash
// restarts (probes survive a process bounce), engine restarts in place, and
// hot-spare promotion. Engine probe IDs are process-local, so the journal is
// keyed by serve-level probe IDs, which are stable across engine instances.

// Journal op names.
const (
	jopAdd    = "add"
	jopEnable = "enable"
	jopRemove = "remove"
	jopChange = "change"
)

// journalOp is one committed probe operation. Spec is set for adds only.
type journalOp struct {
	Op     string     `json:"op"`
	ID     int64      `json:"id"`
	Tenant string     `json:"tenant"`
	Spec   *ProbeSpec `json:"spec,omitempty"`
}

// probeJournal wraps the persist.Log with JSON encoding and best-effort
// append semantics: a failed append (disk full, injected persist:log-append
// fault) is counted, not fatal — the shard keeps serving, at the cost of
// that op not surviving a restart.
type probeJournal struct {
	mu    sync.Mutex
	log   *persist.Log
	drops atomic.Uint64
}

// openProbeJournal opens (creating) the journal and returns the replayed
// ops. Undecodable records — impossible short of a schema change, since the
// log layer already checksums — are skipped.
func openProbeJournal(path string, hook func(string) error) (*probeJournal, []journalOp, error) {
	log, recs, err := persist.OpenLog(path, persist.Options{FaultHook: hook})
	if err != nil {
		return nil, nil, err
	}
	return &probeJournal{log: log}, decodeJournalOps(recs), nil
}

func decodeJournalOps(recs [][]byte) []journalOp {
	ops := make([]journalOp, 0, len(recs))
	for _, rec := range recs {
		var op journalOp
		if json.Unmarshal(rec, &op) == nil && op.Op != "" {
			ops = append(ops, op)
		}
	}
	return ops
}

// append journals one committed op (best-effort).
func (j *probeJournal) append(op journalOp) {
	if j == nil {
		return
	}
	payload, err := json.Marshal(op)
	if err != nil {
		j.drops.Add(1)
		return
	}
	j.mu.Lock()
	err = j.log.Append(payload)
	j.mu.Unlock()
	if err != nil {
		j.drops.Add(1)
	}
}

// records reports how many ops the journal holds; dropped counts appends
// that failed.
func (j *probeJournal) records() int {
	if j == nil {
		return 0
	}
	return j.log.Records()
}

func (j *probeJournal) dropped() uint64 {
	if j == nil {
		return 0
	}
	return j.drops.Load()
}

func (j *probeJournal) close() {
	if j != nil {
		j.log.Close()
	}
}

// probeState is the reduction of a journal to one probe's final state.
type probeState struct {
	ID     int64
	Tenant string
	Spec   ProbeSpec
	Active bool
}

// reduceJournal folds an op sequence into per-probe final states, in first-
// add order — what a replay actually applies to a fresh engine. Ops against
// never-added IDs (a torn-away add) are dropped.
func reduceJournal(ops []journalOp) []probeState {
	byID := map[int64]*probeState{}
	var order []int64
	for _, op := range ops {
		switch op.Op {
		case jopAdd:
			if op.Spec == nil {
				continue
			}
			if _, dup := byID[op.ID]; !dup {
				order = append(order, op.ID)
			}
			byID[op.ID] = &probeState{ID: op.ID, Tenant: op.Tenant, Spec: *op.Spec, Active: true}
		case jopEnable:
			if st := byID[op.ID]; st != nil {
				st.Active = true
			}
		case jopRemove:
			if st := byID[op.ID]; st != nil {
				st.Active = false
			}
		case jopChange:
			// Re-instrumentation has no lasting state beyond the rebuild.
		}
	}
	out := make([]probeState, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}
