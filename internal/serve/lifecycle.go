package serve

import (
	"fmt"
	"sync"
	"time"

	"odin/internal/telemetry"
)

// The shard lifecycle manager makes a shard self-healing. A per-shard
// watchdog samples Supervisor.Health on an interval and classifies the
// shard; when it turns wedged the recovery ladder runs:
//
//  1. restart in place — drain, close the engine, boot a fresh one warm
//     from the persist snapshot + object cache, replay the tenant-probe
//     journal; retried with exponential backoff up to RestartAttempts;
//  2. hot-spare promotion — atomically swap in the standby replica that has
//     been converging through the journal stream (zero rebuild work);
//  3. dead — fail fast with 503 + Retry-After until an operator intervenes.
//
// Requests arriving during a swap park on the shard gate and re-admit
// against the new slot; they are delayed by the failover window, never
// dropped.

// ShardState is the watchdog's classification of a shard.
type ShardState int

const (
	// ShardHealthy: serving, breaker closed or only transiently open.
	ShardHealthy ShardState = iota
	// ShardDegraded: serving but impaired — breaker open past the grace
	// window, or the hot spare is missing/lagging.
	ShardDegraded
	// ShardWedged: not making progress (stuck queue, overrun generation,
	// loop panic, breaker pinned open); recovery ladder is about to run.
	ShardWedged
	// ShardRecovering: a restart or promotion is in flight.
	ShardRecovering
	// ShardDead: recovery ladder exhausted; terminal until operator action.
	ShardDead
)

func (s ShardState) String() string {
	switch s {
	case ShardHealthy:
		return "healthy"
	case ShardDegraded:
		return "degraded"
	case ShardWedged:
		return "wedged"
	case ShardRecovering:
		return "recovering"
	case ShardDead:
		return "dead"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// WatchdogOptions tunes the health watchdog and recovery ladder.
type WatchdogOptions struct {
	// Interval between health samples. Default 500ms.
	Interval time.Duration
	// StuckQueueAge: a ticket queued longer than this with no generation
	// completing marks the shard wedged. Default 30s.
	StuckQueueAge time.Duration
	// GenDeadline: a single generation running longer than this marks the
	// shard wedged (the engine loop is stuck inside a rebuild). Default 60s.
	GenDeadline time.Duration
	// BreakerOpenGrace: breaker open longer than this is degraded. Default 5s.
	BreakerOpenGrace time.Duration
	// BreakerWedgeAfter: breaker open longer than this is wedged — backoff
	// is no longer converging. Default 30s.
	BreakerWedgeAfter time.Duration
	// RestartAttempts bounds restart-in-place tries before escalating to
	// promotion. 0 means the default (2); -1 skips restarts entirely and
	// goes straight to promotion.
	RestartAttempts int
	// RestartBackoff is the delay before the first restart retry, doubling
	// up to RestartMaxBackoff. Defaults 250ms / 5s.
	RestartBackoff    time.Duration
	RestartMaxBackoff time.Duration
	// DrainTimeout bounds how long a recovery waits for the old supervisor
	// to drain before abandoning it. Default 3s.
	DrainTimeout time.Duration
	// BootTimeout bounds a replacement engine's boot build (warm starts are
	// fast; a cold rebuild of a large module is not). Default 2m.
	BootTimeout time.Duration
	// Disable turns the watchdog off (tests drive recovery manually).
	Disable bool
}

func (o WatchdogOptions) withDefaults() WatchdogOptions {
	if o.Interval <= 0 {
		o.Interval = 500 * time.Millisecond
	}
	if o.StuckQueueAge <= 0 {
		o.StuckQueueAge = 30 * time.Second
	}
	if o.GenDeadline <= 0 {
		o.GenDeadline = 60 * time.Second
	}
	if o.BreakerOpenGrace <= 0 {
		o.BreakerOpenGrace = 5 * time.Second
	}
	if o.BreakerWedgeAfter <= 0 {
		o.BreakerWedgeAfter = 30 * time.Second
	}
	if o.RestartAttempts == 0 {
		o.RestartAttempts = 2
	}
	if o.RestartBackoff <= 0 {
		o.RestartBackoff = 250 * time.Millisecond
	}
	if o.RestartMaxBackoff <= 0 {
		o.RestartMaxBackoff = 5 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 3 * time.Second
	}
	if o.BootTimeout <= 0 {
		o.BootTimeout = 2 * time.Minute
	}
	return o
}

// FailoverEvent records one completed recovery action.
type FailoverEvent struct {
	// Kind is "restart" or "promotion".
	Kind string `json:"kind"`
	// DurationMS is the unavailability window: beginSwap to endSwap.
	DurationMS float64 `json:"duration_ms"`
	// At is when the event completed (unix seconds).
	At int64 `json:"at"`
	// Cause is the health condition that triggered the ladder.
	Cause string `json:"cause"`
}

// maxFailoverEvents bounds the per-shard event ring.
const maxFailoverEvents = 32

// Serve-layer lifecycle metric families (per-shard registries).
const (
	MetricShardState       = "odin_serve_shard_state"
	MetricRestarts         = "odin_serve_restarts_total"
	MetricPromotions       = "odin_serve_promotions_total"
	MetricFailoverSeconds  = "odin_serve_failover_seconds"
	MetricParked           = "odin_serve_parked_total"
	MetricJournalAppends   = "odin_serve_journal_appends_total"
	MetricJournalFallbacks = "odin_serve_journal_fallbacks_total"
	MetricReplicaFailures  = "odin_serve_replica_failures_total"
	MetricReplicaForwarded = "odin_serve_replica_forwarded_total"
)

// shardMetrics holds the lifecycle metric handles on the shard registry.
// The registry is reused across engine instances, so these accumulate
// across restarts and promotions.
type shardMetrics struct {
	restarts         *telemetry.Counter
	promotions       *telemetry.Counter
	failoverSeconds  *telemetry.Histogram
	parked           *telemetry.Counter
	journalAppends   *telemetry.Counter
	journalFallbacks *telemetry.Counter
	replicaFailures  *telemetry.Counter
	replicaForwarded *telemetry.Counter
}

func newShardMetrics(reg *telemetry.Registry) *shardMetrics {
	reg.Describe(MetricShardState, "Watchdog classification of the shard (0 healthy .. 4 dead).")
	reg.Describe(MetricRestarts, "Engine restarts in place performed by the recovery ladder.")
	reg.Describe(MetricPromotions, "Hot-spare replica promotions performed by the recovery ladder.")
	reg.Describe(MetricFailoverSeconds, "Unavailability window of each failover swap.")
	reg.Describe(MetricParked, "Requests parked on the shard gate during a failover swap.")
	reg.Describe(MetricJournalAppends, "Probe operations appended to the tenant-probe journal.")
	reg.Describe(MetricJournalFallbacks, "Journal opens or appends abandoned after persistent failure.")
	reg.Describe(MetricReplicaFailures, "Hot-spare boot or rebuild failures.")
	reg.Describe(MetricReplicaForwarded, "Probe operations forwarded to the hot spare.")
	return &shardMetrics{
		restarts:         reg.Counter(MetricRestarts),
		promotions:       reg.Counter(MetricPromotions),
		failoverSeconds:  reg.Histogram(MetricFailoverSeconds, nil),
		parked:           reg.Counter(MetricParked),
		journalAppends:   reg.Counter(MetricJournalAppends),
		journalFallbacks: reg.Counter(MetricJournalFallbacks),
		replicaFailures:  reg.Counter(MetricReplicaFailures),
		replicaForwarded: reg.Counter(MetricReplicaForwarded),
	}
}

// lifecycle is the per-shard health watchdog + recovery ladder.
type lifecycle struct {
	sh   *shard
	opts WatchdogOptions

	mu           sync.Mutex
	state        ShardState
	cause        string
	restartsUsed int
	lastPanics   uint64
	events       []FailoverEvent
	recovering   bool

	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

func newLifecycle(sh *shard, opts WatchdogOptions) *lifecycle {
	lc := &lifecycle{
		sh:     sh,
		opts:   opts,
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
	}
	// The state gauge rebinds nothing on restart: it reads lc, which
	// outlives every engine instance.
	sh.reg.GaugeFunc(MetricShardState, func() int64 { return int64(lc.State()) })
	if opts.Disable {
		close(lc.done)
		return lc
	}
	go lc.watch()
	return lc
}

func (lc *lifecycle) stopWatchdog() {
	lc.stopOnce.Do(func() { close(lc.stopCh) })
	<-lc.done
}

// State returns the current classification.
func (lc *lifecycle) State() ShardState {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	return lc.state
}

// Events returns a copy of the failover event ring, newest last.
func (lc *lifecycle) Events() []FailoverEvent {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	out := make([]FailoverEvent, len(lc.events))
	copy(out, lc.events)
	return out
}

func (lc *lifecycle) recordEvent(ev FailoverEvent) {
	lc.mu.Lock()
	lc.events = append(lc.events, ev)
	if len(lc.events) > maxFailoverEvents {
		lc.events = lc.events[len(lc.events)-maxFailoverEvents:]
	}
	lc.mu.Unlock()
}

func (lc *lifecycle) watch() {
	defer close(lc.done)
	tick := time.NewTicker(lc.opts.Interval)
	defer tick.Stop()
	for {
		select {
		case <-lc.stopCh:
			return
		case <-tick.C:
		}
		if lc.State() == ShardDead {
			return
		}
		state, cause := lc.classify()
		lc.mu.Lock()
		if lc.recovering {
			lc.mu.Unlock()
			continue
		}
		lc.state = state
		lc.cause = cause
		wedged := state == ShardWedged
		if wedged {
			lc.state = ShardRecovering
			lc.recovering = true
		}
		lc.mu.Unlock()
		if wedged {
			lc.runLadder(cause)
		}
	}
}

// classify samples the serving supervisor's health and maps it to a shard
// state. The panic counter is compared against the last sample so a single
// loop panic (recovered, batch failed, breaker tripped) wedges the shard at
// most once per occurrence.
func (lc *lifecycle) classify() (ShardState, string) {
	slot := lc.sh.current()
	if slot == nil {
		return ShardWedged, "no serving slot"
	}
	h := slot.sup.Health()
	lc.mu.Lock()
	lastPanics := lc.lastPanics
	lc.lastPanics = h.LoopPanics
	lc.mu.Unlock()
	switch {
	case h.LoopPanics > lastPanics:
		return ShardWedged, fmt.Sprintf("engine loop panicked (%d total)", h.LoopPanics)
	case h.GenInFlight && h.GenRunningFor > lc.opts.GenDeadline:
		return ShardWedged, fmt.Sprintf("generation running %s (deadline %s)", h.GenRunningFor.Round(time.Millisecond), lc.opts.GenDeadline)
	case h.OldestQueuedAge > lc.opts.StuckQueueAge:
		return ShardWedged, fmt.Sprintf("ticket queued %s (limit %s)", h.OldestQueuedAge.Round(time.Millisecond), lc.opts.StuckQueueAge)
	case h.Breaker == "open" && h.BreakerOpenFor > lc.opts.BreakerWedgeAfter:
		return ShardWedged, fmt.Sprintf("breaker open %s (limit %s)", h.BreakerOpenFor.Round(time.Millisecond), lc.opts.BreakerWedgeAfter)
	case h.Breaker == "open" && h.BreakerOpenFor > lc.opts.BreakerOpenGrace:
		return ShardDegraded, fmt.Sprintf("breaker open %s", h.BreakerOpenFor.Round(time.Millisecond))
	}
	return ShardHealthy, ""
}

// runLadder executes the recovery ladder for one wedge event: bounded
// restarts in place with exponential backoff, then hot-spare promotion,
// then dead.
func (lc *lifecycle) runLadder(cause string) {
	defer func() {
		lc.mu.Lock()
		lc.recovering = false
		if lc.state == ShardRecovering {
			lc.state = ShardHealthy
		}
		lc.mu.Unlock()
	}()

	backoff := lc.opts.RestartBackoff
	for attempt := 0; attempt < lc.opts.RestartAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-lc.stopCh:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > lc.opts.RestartMaxBackoff {
				backoff = lc.opts.RestartMaxBackoff
			}
		}
		if err := lc.restartInPlace(cause); err == nil {
			lc.mu.Lock()
			lc.restartsUsed = 0
			lc.mu.Unlock()
			return
		}
	}
	if err := lc.promote(cause); err == nil {
		return
	}
	lc.sh.markDead(fmt.Errorf("%s; restarts and promotion failed", cause))
	lc.mu.Lock()
	lc.state = ShardDead
	lc.mu.Unlock()
}

// restartInPlace drains the wedged slot (bounded), tears it down, and boots
// a replacement engine warm from the persist snapshot + cache, replaying
// the probe ledger so every registered probe survives.
func (lc *lifecycle) restartInPlace(cause string) error {
	sh := lc.sh
	start := time.Now()
	sh.beginSwap()
	ok := false
	defer func() {
		if !ok {
			sh.endSwap(nil, nil)
		}
	}()

	old := sh.current()
	if old != nil {
		drainCtx, cancel := ctxTimeout(lc.opts.DrainTimeout)
		// Best-effort drain: already-admitted work gets a chance to commit
		// (and feed the journal) before teardown. A wedged loop won't
		// drain; the timeout moves on.
		old.sup.Drain(drainCtx)
		cancel()
		// Engine.Close is safe against an in-flight rebuild; it saves the
		// snapshot and releases the persist writer lock so the replacement
		// can take it.
		old.eng.Close()
	}

	bootCtx, cancel := ctxTimeout(lc.opts.BootTimeout)
	defer cancel()
	slot, err := sh.bootEngine(bootCtx, false)
	if err != nil {
		return err
	}
	engIDs, err := replayInto(bootCtx, slot, sh.ledgerStates(), &sh.site)
	if err != nil {
		slot.sup.Close()
		slot.eng.Close()
		return err
	}
	sh.endSwap(slot, engIDs)
	ok = true

	d := time.Since(start)
	sh.metrics.restarts.Inc()
	sh.metrics.failoverSeconds.Observe(d)
	lc.recordEvent(FailoverEvent{Kind: "restart", DurationMS: float64(d) / float64(time.Millisecond), At: time.Now().Unix(), Cause: cause})
	return nil
}

// promote swaps the hot-spare replica in as the serving slot. The replica
// has been converging through the journal stream, so the swap is a drain +
// barrier, not a rebuild. Ordering matters: the spare is detached only
// after the swap gate closes, so every committed op either reached the
// spare's intake, or landed in pendingOps for endSwap to replay onto the
// promoted slot — never neither.
func (lc *lifecycle) promote(cause string) error {
	sh := lc.sh
	start := time.Now()
	sh.beginSwap()
	ok := false
	defer func() {
		if !ok {
			sh.endSwap(nil, nil)
		}
	}()

	sh.mu.Lock()
	rep := sh.replica
	sh.replica = nil
	sh.mu.Unlock()
	if rep == nil {
		return fmt.Errorf("serve: shard %s: no hot spare", sh.name)
	}

	old := sh.current()
	if old != nil {
		drainCtx, cancel := ctxTimeout(lc.opts.DrainTimeout)
		old.sup.Drain(drainCtx)
		cancel()
		old.eng.Close()
	}

	promoteCtx, cancel := ctxTimeout(lc.opts.BootTimeout)
	defer cancel()
	slot, engIDs, err := rep.promote(promoteCtx)
	if err != nil {
		sh.metrics.replicaFailures.Inc()
		return err
	}
	sh.endSwap(slot, engIDs)
	ok = true

	d := time.Since(start)
	sh.metrics.promotions.Inc()
	sh.metrics.failoverSeconds.Observe(d)
	lc.recordEvent(FailoverEvent{Kind: "promotion", DurationMS: float64(d) / float64(time.Millisecond), At: time.Now().Unix(), Cause: cause})

	// Boot the replacement spare off the critical path; it registers
	// itself. The promoted slot serves read-only from the old primary's
	// persist tier, and spares stay read-only too — nothing contends for
	// the writer lock after a promotion.
	go func() {
		if _, err := bootReplica(sh); err != nil {
			sh.metrics.replicaFailures.Inc()
		}
	}()
	return nil
}
