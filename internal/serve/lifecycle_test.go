package serve

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"odin/internal/faultinject"
	"odin/internal/ir"
)

// fastWatchdog is a watchdog tuned for tests: tight sampling and deadlines
// so a wedge is detected in tens of milliseconds, not tens of seconds.
func fastWatchdog() WatchdogOptions {
	return WatchdogOptions{
		Interval:          20 * time.Millisecond,
		StuckQueueAge:     300 * time.Millisecond,
		GenDeadline:       500 * time.Millisecond,
		BreakerOpenGrace:  50 * time.Millisecond,
		BreakerWedgeAfter: 400 * time.Millisecond,
		RestartAttempts:   1,
		RestartBackoff:    20 * time.Millisecond,
		DrainTimeout:      time.Second,
		BootTimeout:       time.Minute,
	}
}

// waitFor polls cond until true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestJournalReplayAcrossRestart pins the durability contract: probes added
// through the API survive a full server bounce (new process, same data
// dir), with their serve-level IDs and active/inactive state intact.
func TestJournalReplayAcrossRestart(t *testing.T) {
	dataDir := t.TempDir()
	mod := testModule(t, 5)
	boot := func() (*Server, func()) {
		clone, _ := ir.CloneModule(mod)
		srv, err := New(Options{
			DataDir: dataDir,
			Shards:  []ShardSpec{{Name: "alpha", Module: clone, Watchdog: WatchdogOptions{Disable: true}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Close(ctx)
		}
	}

	srv, closeSrv := boot()
	hs, client := startTest(t, srv)
	c := client("acme")
	res1, err := c.AddProbe("alpha", ProbeSpec{Func: "f0"})
	if err != nil {
		t.Fatalf("AddProbe: %v", err)
	}
	res2, err := c.AddProbe("alpha", ProbeSpec{Func: "f1"})
	if err != nil {
		t.Fatalf("AddProbe: %v", err)
	}
	if _, err := c.ProbeAction("alpha", res2.ID, "remove"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	hs.Close()
	closeSrv()

	srv2, closeSrv2 := boot()
	defer closeSrv2()
	hs2, client2 := startTest(t, srv2)
	defer hs2.Close()
	c2 := client2("acme")

	// The removed probe can be re-enabled under its old ID; the active one
	// is live (remove works), both owned by the same tenant.
	if _, err := c2.ProbeAction("alpha", res2.ID, "enable"); err != nil {
		t.Fatalf("enable replayed probe %d: %v", res2.ID, err)
	}
	if _, err := c2.ProbeAction("alpha", res1.ID, "remove"); err != nil {
		t.Fatalf("remove replayed probe %d: %v", res1.ID, err)
	}
	// A fresh add must not collide with replayed IDs.
	res3, err := c2.AddProbe("alpha", ProbeSpec{Func: "f2"})
	if err != nil {
		t.Fatalf("AddProbe after replay: %v", err)
	}
	if res3.ID == res1.ID || res3.ID == res2.ID {
		t.Fatalf("replayed ID collision: new %d vs old %d/%d", res3.ID, res1.ID, res2.ID)
	}
}

// startTest is newTestServer's tail for a server built by the caller.
func startTest(t *testing.T, srv *Server) (*httptest.Server, func(string) *Client) {
	t.Helper()
	hs := httptest.NewServer(srv.Handler())
	return hs, func(tenant string) *Client { return &Client{Base: hs.URL, Tenant: tenant} }
}

// TestWatchdogRestartFromSnapshot wedges a replica-less shard with a
// persistent stall at the commit site and asserts the watchdog restarts the
// engine in place: the shard returns to healthy, a restart failover event
// is recorded, and probes registered before the wedge still answer under
// their serve-level IDs.
func TestWatchdogRestartFromSnapshot(t *testing.T) {
	inj := faultinject.New(7)
	inj.SetStall(2 * time.Second)
	dataDir := t.TempDir()
	srv, err := New(Options{
		DataDir: dataDir,
		Shards: []ShardSpec{{
			Name:      "alpha",
			Module:    testModule(t, 5),
			FaultHook: inj.At,
			Watchdog: WatchdogOptions{
				Interval:        20 * time.Millisecond,
				GenDeadline:     200 * time.Millisecond,
				StuckQueueAge:   300 * time.Millisecond,
				RestartAttempts: 2,
				RestartBackoff:  20 * time.Millisecond,
				DrainTimeout:    500 * time.Millisecond,
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()
	hs, client := startTest(t, srv)
	defer hs.Close()
	c := client("acme")

	res, err := c.AddProbe("alpha", ProbeSpec{Func: "f0"})
	if err != nil {
		t.Fatalf("AddProbe: %v", err)
	}

	// Wedge: every commit from now on stalls 2s, far past GenDeadline. The
	// request itself rides through the failover (parked + re-admitted or
	// committed by the drain), so fire it from a goroutine with a generous
	// client-side budget.
	inj.Arm(faultinject.Rule{Site: "supervisor:commit", Kind: faultinject.KindStall, Rate: 1, Times: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.AddProbe("alpha", ProbeSpec{Func: "f1"})
	}()

	waitFor(t, 15*time.Second, "watchdog restart", func() bool {
		evs := srv.ShardFailovers("alpha")
		return len(evs) > 0 && evs[0].Kind == "restart"
	})
	wg.Wait()
	waitFor(t, 10*time.Second, "shard healthy again", func() bool {
		return srv.ShardState("alpha") == ShardHealthy
	})

	// The restarted engine still knows the pre-wedge probe.
	if _, err := c.ProbeAction("alpha", res.ID, "remove"); err != nil {
		t.Fatalf("remove probe %d after restart: %v", res.ID, err)
	}
	// And the restart warm-started from the persist tier.
	snap := srv.Fleet()
	if snap.Shards[0].Restarts != 1 {
		t.Fatalf("restarts = %d, want 1", snap.Shards[0].Restarts)
	}
	if snap.Shards[0].WarmHits == 0 {
		t.Fatalf("restarted shard did not warm-start (warm hits = 0)")
	}
}

// TestPromotionZeroDowntime wedges a shard that has a hot spare and no
// restart budget, and asserts the ladder promotes the spare: requests keep
// succeeding throughout (parked during the swap, never dropped), the
// promoted slot is read-only, and pre-wedge probes survive with their IDs.
func TestPromotionZeroDowntime(t *testing.T) {
	inj := faultinject.New(11)
	inj.SetStall(2 * time.Second)
	dataDir := t.TempDir()
	srv, err := New(Options{
		DataDir: dataDir,
		Shards: []ShardSpec{{
			Name:      "alpha",
			Module:    testModule(t, 5),
			Replicas:  1,
			FaultHook: inj.At,
			Watchdog: WatchdogOptions{
				Interval:        20 * time.Millisecond,
				GenDeadline:     200 * time.Millisecond,
				StuckQueueAge:   300 * time.Millisecond,
				RestartAttempts: -1, // straight to promotion
				DrainTimeout:    500 * time.Millisecond,
			},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()
	hs, client := startTest(t, srv)
	defer hs.Close()
	c := client("acme")

	res, err := c.AddProbe("alpha", ProbeSpec{Func: "f0"})
	if err != nil {
		t.Fatalf("AddProbe: %v", err)
	}
	// Wait for the spare to finish seeding before the kill, as a real
	// deployment would (the fleet view reports spare readiness).
	waitFor(t, 30*time.Second, "hot spare ready", func() bool {
		return srv.Fleet().Shards[0].Replica
	})

	// Kill the primary: one 2s stall wedges the generation past deadline.
	inj.Arm(faultinject.Rule{Site: "supervisor:commit", Kind: faultinject.KindStall, Rate: 1, Times: 1})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.AddProbe("alpha", ProbeSpec{Func: "f1"})
	}()

	waitFor(t, 15*time.Second, "promotion", func() bool {
		evs := srv.ShardFailovers("alpha")
		return len(evs) > 0 && evs[len(evs)-1].Kind == "promotion"
	})
	wg.Wait()
	waitFor(t, 10*time.Second, "shard healthy again", func() bool {
		return srv.ShardState("alpha") == ShardHealthy
	})

	// Zero dropped: mid-failover and post-failover requests all commit.
	if _, err := c.ProbeAction("alpha", res.ID, "remove"); err != nil {
		t.Fatalf("remove pre-failover probe %d on promoted slot: %v", res.ID, err)
	}
	if _, err := c.AddProbe("alpha", ProbeSpec{Func: "f2"}); err != nil {
		t.Fatalf("AddProbe on promoted slot: %v", err)
	}
	snap := srv.Fleet()
	if snap.Shards[0].Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", snap.Shards[0].Promotions)
	}
	if !snap.Shards[0].ReadOnly {
		t.Fatalf("promoted slot should serve read-only from the primary's cache")
	}
}

// TestDeadShardFailsFast exhausts the ladder (no spare, no restart budget
// left because boot itself is broken) and asserts requests fail fast with
// the dead verdict + Retry-After instead of hanging.
func TestDeadShardFailsFast(t *testing.T) {
	mod := testModule(t, 4)
	srv, err := New(Options{
		Shards: []ShardSpec{{Name: "alpha", Module: mod, Watchdog: WatchdogOptions{Disable: true}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()
	hs, client := startTest(t, srv)
	defer hs.Close()
	c := client("acme")

	// Drive the terminal rung directly (the watchdog paths are exercised
	// above); markDead is what the ladder calls after promotion fails.
	sh := srv.byName["alpha"]
	sh.markDead(context.DeadlineExceeded)

	_, err = c.AddProbe("alpha", ProbeSpec{Func: "f0"})
	ae, ok := err.(*APIError)
	if !ok {
		t.Fatalf("expected APIError, got %v", err)
	}
	if ae.Status != 503 || ae.Code != "dead" {
		t.Fatalf("dead shard verdict = %d %s, want 503 dead", ae.Status, ae.Code)
	}
	if ae.RetryAfter <= 0 {
		t.Fatalf("dead shard response missing Retry-After")
	}
}

// TestParkedRequestsReadmit holds the swap gate open manually and asserts
// requests park (no failure) until endSwap, then complete against the slot.
func TestParkedRequestsReadmit(t *testing.T) {
	srv, err := New(Options{
		Shards: []ShardSpec{{Name: "alpha", Module: testModule(t, 4), Watchdog: WatchdogOptions{Disable: true}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()
	hs, client := startTest(t, srv)
	defer hs.Close()
	c := client("acme")

	sh := srv.byName["alpha"]
	sh.beginSwap()
	done := make(chan error, 1)
	go func() {
		_, err := c.AddProbe("alpha", ProbeSpec{Func: "f0"})
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("request completed through a closed swap gate: err=%v", err)
	case <-time.After(200 * time.Millisecond):
	}
	sh.endSwap(nil, nil)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("parked request failed after gate reopened: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parked request never re-admitted")
	}
	if got := sh.metrics.parked.Value(); got == 0 {
		t.Fatalf("parked counter = 0, want > 0")
	}
}
