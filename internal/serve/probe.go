// Package serve is the probe-control plane: a daemon-side library that
// hosts many programs across independent engine shards (one core.Engine +
// core.Supervisor per shard, each with its own persistent cache and
// snapshot), routes probe traffic to the owning shard over a versioned
// JSON-over-HTTP API, and layers fleet admission control — per-tenant token
// buckets, per-tenant failure breakers, and a global in-flight cap — on top
// of the per-engine admission queues so one hostile tenant cannot starve
// the rest of the fleet.
package serve

import (
	"fmt"

	"odin/internal/core"
	"odin/internal/ir"
)

// HitBuiltin is the runtime hook counter probes call; every shard engine
// registers it as an extra builtin so instrumenters can bind against it.
const HitBuiltin = "__serve_hit"

// Probe kinds accepted by the API.
const (
	KindCounter = "counter"
	KindPoison  = "poison"
)

// ProbeSpec is the wire form of a probe request: which function to patch
// and what instrumentation to apply. Kind defaults to "counter"; "poison"
// installs an instrumenter that always fails, exercising the supervisor's
// bisection/quarantine path (used by tests and the hostile arm of the
// serve-storm experiment).
type ProbeSpec struct {
	Func string `json:"func"`
	Kind string `json:"kind,omitempty"`
}

// Validate normalizes the spec and rejects malformed ones.
func (ps *ProbeSpec) Validate() error {
	if ps.Func == "" {
		return fmt.Errorf("serve: probe spec needs a func")
	}
	switch ps.Kind {
	case "":
		ps.Kind = KindCounter
	case KindCounter, KindPoison:
	default:
		return fmt.Errorf("serve: unknown probe kind %q", ps.Kind)
	}
	return nil
}

// counterProbe instruments its target's entry block with a HitBuiltin call
// carrying a shard-unique site ID — the serve-side analogue of the bench
// storm probe.
type counterProbe struct {
	fnName string
	site   int64
}

func (p *counterProbe) PatchTarget() string { return p.fnName }

func (p *counterProbe) Instrument(s *core.Sched) error {
	f := s.MapFunc(p.fnName)
	if f == nil {
		return fmt.Errorf("serve: %s not in recompilation", p.fnName)
	}
	nb := f.Blocks[0]
	hook := s.LookupFunction(HitBuiltin, &ir.FuncType{Params: []ir.Type{ir.I64}, Ret: ir.Void})
	b := ir.NewBuilder()
	b.SetInsertBefore(nb, len(nb.Phis()))
	b.Call(ir.Void, hook.Name, ir.Const(ir.I64, p.site))
	return nil
}

// poisonProbe always fails at the instrument stage. Instrument errors abort
// a generation before any compilation happens, which makes poison probes
// cheap for the supervisor to reject and perfect fodder for its bisection:
// co-batched healthy requests are salvaged, the poison probe is
// quarantined.
type poisonProbe struct {
	fnName string
}

func (p *poisonProbe) PatchTarget() string { return p.fnName }

func (p *poisonProbe) Instrument(s *core.Sched) error {
	return fmt.Errorf("serve: poison probe on %s", p.fnName)
}

// buildProbe turns a validated spec into a core.Probe instance. site is the
// shard-allocated hit-site ID (ignored by poison probes).
func buildProbe(spec ProbeSpec, site int64) core.Probe {
	if spec.Kind == KindPoison {
		return &poisonProbe{fnName: spec.Func}
	}
	return &counterProbe{fnName: spec.Func, site: site}
}
