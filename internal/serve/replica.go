package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"odin/internal/core"
)

// A replica is a hot-spare standby engine for one shard. It boots read-only
// from the same persist cache and snapshot as the primary — never taking
// the writer flock, never writing state — so the spare's warm start is free
// riding on the primary's artifacts. After boot it is seeded from the
// shard's probe ledger and then converges through the forwarded stream of
// committed probe ops (the same records the tenant-probe journal holds).
// Promotion is therefore a drain + barrier, not a rebuild: stop the intake,
// finish applying what's buffered, run one sync generation, and the spare's
// engine image is the primary's.

// replicaIntakeDepth bounds the forwarded-op buffer. A spare that falls
// further behind than this is lagging: promotion reseeds it from the ledger
// instead of trusting the stream.
const replicaIntakeDepth = 4096

type replica struct {
	sh   *shard
	slot *engineSlot

	intake  chan journalOp
	stopCh  chan struct{}
	done    chan struct{}
	lagging atomic.Bool

	mu     sync.Mutex
	engIDs map[int64]int
	broken bool
}

// ctxTimeout is context.WithTimeout from Background, for recovery paths
// that outlive any request.
func ctxTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// bootReplica boots a shard's hot spare and registers it as sh.replica.
// Registration and the ledger seed snapshot happen under one lock, so no
// committed op can fall between the seed and the forwarded stream.
func bootReplica(sh *shard) (*replica, error) {
	ctx, cancel := ctxTimeout(sh.spec.Watchdog.BootTimeout)
	defer cancel()
	slot, err := sh.bootEngine(ctx, true)
	if err != nil {
		return nil, err
	}
	rep := &replica{
		sh:     sh,
		slot:   slot,
		intake: make(chan journalOp, replicaIntakeDepth),
		stopCh: make(chan struct{}),
		done:   make(chan struct{}),
		engIDs: map[int64]int{},
	}
	sh.mu.Lock()
	if sh.deadErr != nil || sh.replica != nil {
		err := sh.deadErr
		sh.mu.Unlock()
		slot.sup.Close()
		slot.eng.Close()
		if err == nil {
			err = fmt.Errorf("serve: shard %s already has a hot spare", sh.name)
		}
		return nil, err
	}
	seed := make([]probeState, 0, len(sh.probes))
	for id, rec := range sh.probes {
		seed = append(seed, probeState{ID: id, Tenant: rec.Tenant, Spec: rec.Spec, Active: rec.Active})
	}
	sh.replica = rep
	sh.mu.Unlock()
	go rep.run(seed)
	return rep, nil
}

// run seeds the spare from the ledger snapshot, then applies forwarded ops
// until stopped. A failed seed detaches the spare (the shard is merely
// degraded; the next promotion attempt will find no spare and the ladder
// ends at dead instead).
func (rep *replica) run(seed []probeState) {
	defer close(rep.done)
	ctx, cancel := ctxTimeout(rep.sh.spec.Watchdog.BootTimeout)
	engIDs, err := replayInto(ctx, rep.slot, seed, &rep.sh.site)
	cancel()
	if err != nil {
		rep.mu.Lock()
		rep.broken = true
		rep.mu.Unlock()
		rep.detach()
		rep.sh.metrics.replicaFailures.Inc()
		return
	}
	rep.mu.Lock()
	rep.engIDs = engIDs
	rep.mu.Unlock()
	for {
		select {
		case op := <-rep.intake:
			rep.apply(op)
		case <-rep.stopCh:
			// Drain what's buffered so promotion sees every forwarded op.
			for {
				select {
				case op := <-rep.intake:
					rep.apply(op)
				default:
					return
				}
			}
		}
	}
}

// detach removes the replica from its shard if still registered.
func (rep *replica) detach() {
	sh := rep.sh
	sh.mu.Lock()
	if sh.replica == rep {
		sh.replica = nil
	}
	sh.mu.Unlock()
	rep.slot.sup.Close()
	rep.slot.eng.Close()
}

// forward hands one committed op to the spare's applier. Non-blocking: a
// full intake marks the spare lagging rather than stalling the commit
// path; promotion reseeds a lagging spare from the ledger.
func (rep *replica) forward(op journalOp) {
	if rep == nil {
		return
	}
	select {
	case rep.intake <- op:
		rep.sh.metrics.replicaForwarded.Inc()
	default:
		rep.lagging.Store(true)
	}
}

// apply converges the spare with one committed op. Ops were validated and
// committed on the primary, so failures here (a probe racing quarantine on
// the spare) degrade the spare to lagging rather than erroring.
func (rep *replica) apply(op journalOp) {
	ctx, cancel := ctxTimeout(time.Minute)
	defer cancel()
	rep.mu.Lock()
	engID, known := rep.engIDs[op.ID]
	rep.mu.Unlock()
	switch op.Op {
	case jopAdd:
		if known || op.Spec == nil {
			return
		}
		newID, tk, err := rep.slot.sup.AddProbeCtx(ctx, buildProbe(*op.Spec, rep.sh.site.Add(1)))
		if err != nil {
			rep.lagging.Store(true)
			return
		}
		rep.mu.Lock()
		rep.engIDs[op.ID] = newID
		rep.mu.Unlock()
		if _, err := tk.Wait(ctx); err != nil {
			rep.lagging.Store(true)
		}
	case jopEnable:
		if !known {
			rep.lagging.Store(true)
			return
		}
		rep.waitOp(ctx, func() (*core.Ticket, error) { return rep.slot.sup.EnableProbeCtx(ctx, engID) })
	case jopRemove:
		if !known {
			rep.lagging.Store(true)
			return
		}
		rep.waitOp(ctx, func() (*core.Ticket, error) { return rep.slot.sup.RemoveProbeCtx(ctx, engID) })
	case jopChange:
		if !known {
			return
		}
		rep.waitOp(ctx, func() (*core.Ticket, error) { return rep.slot.sup.MarkChangedCtx(ctx, engID) })
	}
}

func (rep *replica) waitOp(ctx context.Context, submit func() (*core.Ticket, error)) {
	tk, err := submit()
	if err != nil {
		rep.lagging.Store(true)
		return
	}
	if _, err := tk.Wait(ctx); err != nil {
		rep.lagging.Store(true)
	}
}

// promote turns the spare into a serving slot: stop the applier (draining
// every buffered op), reseed from the ledger if the stream ever overflowed,
// and run one sync generation as the barrier. Returns the slot and the
// serve-ID → engine-ID mapping for the ledger rewrite. On error the spare
// is torn down; the caller escalates.
func (rep *replica) promote(ctx context.Context) (*engineSlot, map[int64]int, error) {
	close(rep.stopCh)
	select {
	case <-rep.done:
	case <-ctx.Done():
		rep.teardown()
		return nil, nil, ctx.Err()
	}
	rep.mu.Lock()
	broken := rep.broken
	rep.mu.Unlock()
	if broken {
		return nil, nil, fmt.Errorf("serve: shard %s: hot spare broke during seeding", rep.sh.name)
	}
	if rep.lagging.Load() {
		if err := rep.reseed(ctx); err != nil {
			rep.teardown()
			return nil, nil, err
		}
	}
	// Barrier: one sync generation proves the engine loop is live and the
	// image reflects every applied op.
	tk, err := rep.slot.sup.SyncCtx(ctx)
	if err == nil {
		var res core.TicketResult
		if res, err = tk.Wait(ctx); err == nil {
			err = res.Err
		}
	}
	if err != nil {
		rep.teardown()
		return nil, nil, fmt.Errorf("serve: shard %s: promotion barrier: %w", rep.sh.name, err)
	}
	return rep.slot, rep.engIDs, nil
}

// reseed rebuilds the spare's probe state from the ledger after the
// forwarded stream overflowed: remove everything it knows, replay the
// ledger fresh. Rare (the intake holds thousands of ops) and still far
// cheaper than a cold boot — the engine image and cache stay warm.
func (rep *replica) reseed(ctx context.Context) error {
	rep.mu.Lock()
	old := rep.engIDs
	rep.engIDs = map[int64]int{}
	rep.mu.Unlock()
	for _, engID := range old {
		if tk, err := rep.slot.sup.RemoveProbeCtx(ctx, engID); err == nil {
			tk.Wait(ctx)
		}
	}
	engIDs, err := replayInto(ctx, rep.slot, rep.sh.ledgerStates(), &rep.sh.site)
	if err != nil {
		return fmt.Errorf("serve: shard %s: spare reseed: %w", rep.sh.name, err)
	}
	rep.mu.Lock()
	rep.engIDs = engIDs
	rep.mu.Unlock()
	rep.lagging.Store(false)
	return nil
}

func (rep *replica) teardown() {
	rep.slot.sup.Close()
	rep.slot.eng.Close()
}

// shutdown stops and tears down a spare that will not be promoted.
func (rep *replica) shutdown() {
	select {
	case <-rep.stopCh:
	default:
		close(rep.stopCh)
	}
	<-rep.done
	rep.mu.Lock()
	broken := rep.broken
	rep.mu.Unlock()
	if !broken {
		rep.teardown()
	}
}
