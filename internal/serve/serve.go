package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"odin/internal/persist"
	"odin/internal/telemetry"
)

// Options configures a control-plane Server.
type Options struct {
	// Shards declares the hosted engines. At least one is required.
	Shards []ShardSpec
	// DataDir, when set, lays each shard's persist cache and snapshot out
	// under DataDir/shards/<name>/ (persist.ShardLayout), giving every
	// shard an independent warm-start. Shard specs with explicit
	// CacheDir/SnapshotPath keep them.
	DataDir string
	// Admission tunes the fleet admission ladder.
	Admission AdmissionOptions
	// RequestTimeout bounds one probe operation end to end, ticket wait
	// included (default 30s).
	RequestTimeout time.Duration
}

// Server hosts N programs across M engine shards behind the versioned
// JSON-over-HTTP control API. Create with New, serve with Start (or mount
// Handler yourself), stop with Close.
type Server struct {
	shards   []*shard
	byName   map[string]*shard
	adm      *admission
	fleetReg *telemetry.Registry
	agg      *telemetry.Aggregate
	mux      *http.ServeMux
	timeout  time.Duration

	httpSrv *http.Server
	ln      net.Listener
}

// New builds the shards (running each boot build, warm caches consulted)
// and assembles the API. On any shard failure the already-built shards are
// torn down.
func New(opts Options) (*Server, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("serve: no shards configured")
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 30 * time.Second
	}

	fleetReg := telemetry.NewRegistry()
	s := &Server{
		byName:   map[string]*shard{},
		adm:      newAdmission(opts.Admission, fleetReg),
		fleetReg: fleetReg,
		agg:      telemetry.NewAggregate("shard"),
		timeout:  opts.RequestTimeout,
	}
	s.agg.Attach("fleet", fleetReg)

	for _, spec := range opts.Shards {
		if _, dup := s.byName[spec.Name]; dup {
			s.teardown()
			return nil, fmt.Errorf("serve: duplicate shard name %q", spec.Name)
		}
		if opts.DataDir != "" && spec.CacheDir == "" && spec.SnapshotPath == "" {
			paths, err := persist.ShardLayout(opts.DataDir, spec.Name)
			if err != nil {
				s.teardown()
				return nil, err
			}
			spec.CacheDir = paths.CacheDir
			spec.SnapshotPath = paths.SnapshotPath
			spec.JournalPath = paths.JournalPath
		}
		sh, err := newShard(spec)
		if err != nil {
			s.teardown()
			return nil, err
		}
		s.shards = append(s.shards, sh)
		s.byName[sh.name] = sh
		s.agg.Attach(sh.name, sh.reg)
	}
	s.mux = s.routes()
	return s, nil
}

// teardown closes every shard built so far (quick close, no drain — used
// on construction failure).
func (s *Server) teardown() {
	for _, sh := range s.shards {
		sh.quickClose()
	}
}

// Shards lists the hosted shards in configuration order.
func (s *Server) Shards() []ShardInfo {
	out := make([]ShardInfo, 0, len(s.shards))
	for _, sh := range s.shards {
		out = append(out, ShardInfo{Name: sh.name, Program: sh.program})
	}
	return out
}

// ShardWarmHits reports the boot-time persist hit count of a shard (0 for
// unknown shards) — the warm-start evidence CI asserts on.
func (s *Server) ShardWarmHits(name string) uint64 {
	if sh, ok := s.byName[name]; ok {
		return sh.warmHits()
	}
	return 0
}

// ShardState reports the lifecycle classification of a shard (ShardDead for
// unknown names, so health checks fail safe).
func (s *Server) ShardState(name string) ShardState {
	if sh, ok := s.byName[name]; ok && sh.lc != nil {
		return sh.lc.State()
	}
	return ShardDead
}

// ShardFailovers returns a shard's recent failover events, newest last.
func (s *Server) ShardFailovers(name string) []FailoverEvent {
	if sh, ok := s.byName[name]; ok && sh.lc != nil {
		return sh.lc.Events()
	}
	return nil
}

// Handler returns the control-plane HTTP handler, for embedding the server
// into an existing listener or test harness.
func (s *Server) Handler() http.Handler { return s.mux }

// Fleet assembles the fleet snapshot served at /v1/fleet.
func (s *Server) Fleet() FleetSnapshot {
	snap := FleetSnapshot{
		Tenants:  s.adm.snapshot(),
		InFlight: s.adm.InFlight(),
	}
	for _, sh := range s.shards {
		st := ShardStatus{
			Name:    sh.name,
			Program: sh.program,
			Persist: sh.persistStats(),
		}
		if sh.lc != nil {
			st.State = sh.lc.State().String()
			st.Failovers = sh.lc.Events()
		}
		if slot := sh.current(); slot != nil {
			st.ActiveProbes = slot.eng.Manager.NumActive()
			st.WarmHits = slot.warmHits
			st.Supervisor = slot.sup.Stats()
			st.Health = slot.sup.Health()
			st.ReadOnly = slot.readOnly
			if ra := slot.sup.BreakerRetryAfter(); ra > 0 {
				st.BreakerRetryAfterMS = float64(ra) / float64(time.Millisecond)
			}
		}
		sh.mu.Lock()
		st.Replica = sh.replica != nil
		sh.mu.Unlock()
		st.Restarts = sh.metrics.restarts.Value()
		st.Promotions = sh.metrics.promotions.Value()
		st.JournalRecords = sh.journal.records()
		st.JournalDropped = sh.journal.dropped()
		snap.Shards = append(snap.Shards, st)
	}
	return snap
}

// Start begins serving on addr ("host:0" picks a free port) and returns
// the bound address. The HTTP server runs until Close.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("serve: listen: %w", err)
	}
	s.ln = ln
	s.httpSrv = &http.Server{Handler: s.mux}
	go s.httpSrv.Serve(ln)
	return ln.Addr().String(), nil
}

// Close stops the HTTP front end, drains every shard supervisor (admitted
// work commits; ctx bounds the wait), and closes the engines. Per-shard
// snapshots are written by the drains, so a restart warm-starts each shard
// independently.
func (s *Server) Close(ctx context.Context) error {
	if s.httpSrv != nil {
		shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
		s.httpSrv.Shutdown(shutCtx)
		cancel()
		s.httpSrv = nil
	}
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.close(ctx); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("serve: shard %s: %w", sh.name, err)
		}
	}
	return firstErr
}
