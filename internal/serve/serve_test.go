package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"odin/internal/ir"
	"odin/internal/irtext"
)

// testModule builds a small module of n independent noinline functions plus
// a main that calls them all — the same shape the core supervisor tests
// storm against.
func testModule(t *testing.T, n int) *ir.Module {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `
func @f%d(%%x: i64) -> i64 noinline {
entry:
  %%a = mul i64 %%x, %d
  %%b = add i64 %%a, %d
  ret i64 %%b
}
`, i, i+3, i*7+1)
	}
	sb.WriteString("func @main(%x: i64) -> i64 {\nentry:\n")
	fmt.Fprintf(&sb, "  %%s0 = add i64 %%x, 0\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "  %%r%d = call i64 @f%d(i64 %%x)\n", i, i)
		fmt.Fprintf(&sb, "  %%s%d = add i64 %%s%d, %%r%d\n", i+1, i, i)
	}
	fmt.Fprintf(&sb, "  ret i64 %%s%d\n}\n", n)
	return irtext.MustParse("m", sb.String())
}

// newTestServer boots a server over httptest and returns a client bound to
// the given tenant.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server, func(tenant string) *Client) {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	return srv, hs, func(tenant string) *Client {
		return &Client{Base: hs.URL, Tenant: tenant}
	}
}

func TestServeAPIBasics(t *testing.T) {
	_, _, client := newTestServer(t, Options{
		Shards: []ShardSpec{
			{Name: "alpha", Module: testModule(t, 6)},
			{Name: "beta", Module: testModule(t, 4)},
		},
	})
	c := client("acme")

	shards, err := c.Shards()
	if err != nil {
		t.Fatalf("Shards: %v", err)
	}
	if len(shards) != 2 || shards[0].Name != "alpha" || shards[1].Name != "beta" {
		t.Fatalf("Shards = %+v", shards)
	}

	// Add, toggle, and re-instrument a counter probe.
	res, err := c.AddProbe("alpha", ProbeSpec{Func: "f0"})
	if err != nil {
		t.Fatalf("AddProbe: %v", err)
	}
	if res.Gen == 0 {
		t.Fatalf("AddProbe result = %+v", res)
	}
	for _, action := range []string{"remove", "enable", "change"} {
		if _, err := c.ProbeAction("alpha", res.ID, action); err != nil {
			t.Fatalf("ProbeAction %s: %v", action, err)
		}
	}
	if _, err := c.Sync("alpha"); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	// The fleet snapshot sees the active probe and per-tenant admission.
	snap, err := c.Fleet()
	if err != nil {
		t.Fatalf("Fleet: %v", err)
	}
	if len(snap.Shards) != 2 {
		t.Fatalf("Fleet shards = %d", len(snap.Shards))
	}
	var alpha ShardStatus
	for _, sh := range snap.Shards {
		if sh.Name == "alpha" {
			alpha = sh
		}
	}
	if alpha.ActiveProbes != 1 {
		t.Errorf("alpha active probes = %d, want 1", alpha.ActiveProbes)
	}
	if alpha.Supervisor.Generations == 0 || alpha.Supervisor.Breaker != "closed" {
		t.Errorf("alpha supervisor stats = %+v", alpha.Supervisor)
	}
	found := false
	for _, ts := range snap.Tenants {
		if ts.Tenant == "acme" && ts.Admitted >= 5 {
			found = true
		}
	}
	if !found {
		t.Errorf("tenant ledger missing acme: %+v", snap.Tenants)
	}

	// Aggregated metrics carry per-shard labels plus fleet counters.
	text, err := c.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{`shard="alpha"`, `shard="beta"`, `shard="fleet"`, "odin_serve_admitted_total"} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %s", want)
		}
	}
}

func TestServeAPIErrors(t *testing.T) {
	_, hs, client := newTestServer(t, Options{
		Shards: []ShardSpec{{Name: "alpha", Module: testModule(t, 4)}},
	})
	c := client("acme")

	// Unknown shard.
	_, err := c.AddProbe("nope", ProbeSpec{Func: "f0"})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("unknown shard: %v", err)
	}
	// Malformed spec.
	if _, err := c.AddProbe("alpha", ProbeSpec{}); !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("empty spec: %v", err)
	}
	if _, err := c.AddProbe("alpha", ProbeSpec{Func: "f0", Kind: "exotic"}); !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("bad kind: %v", err)
	}
	// Unknown action.
	res, err := c.AddProbe("alpha", ProbeSpec{Func: "f0"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProbeAction("alpha", res.ID, "explode"); !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("bad action: %v", err)
	}
	// Tenant scoping: another tenant cannot touch acme's probe.
	other := client("rival")
	if _, err := other.ProbeAction("alpha", res.ID, "remove"); !errors.As(err, &ae) || ae.Status != http.StatusNotFound {
		t.Fatalf("foreign probe action: %v", err)
	}
	// A non-integer probe ID 400s rather than panicking the mux.
	resp, err := http.Post(hs.URL+"/v1/shards/alpha/probes/xyz/remove", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-integer id: %d", resp.StatusCode)
	}
}

// TestServePoisonQuarantine drives a poison probe through the API: its add
// must resolve 422 with the quarantine verdict, and re-enabling it must
// fail fast the same way.
func TestServePoisonQuarantine(t *testing.T) {
	_, _, client := newTestServer(t, Options{
		Shards: []ShardSpec{{Name: "alpha", Module: testModule(t, 4)}},
		// Keep the tenant failure breaker out of this test's way.
		Admission: AdmissionOptions{FailThreshold: -1},
	})
	c := client("acme")
	_, err := c.AddProbe("alpha", ProbeSpec{Func: "f1", Kind: KindPoison})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusUnprocessableEntity || ae.Code != "quarantined" {
		t.Fatalf("poison add: %v", err)
	}
	// The shard survives: a healthy probe still commits.
	if _, err := c.AddProbe("alpha", ProbeSpec{Func: "f2"}); err != nil {
		t.Fatalf("healthy add after poison: %v", err)
	}
}

// TestServeWarmStart closes a persistent 2-shard server and reboots it on
// the same data dir: both shards must warm-start (boot-build persist hits)
// independently.
func TestServeWarmStart(t *testing.T) {
	dir := t.TempDir()
	mkOpts := func() Options {
		return Options{
			DataDir: dir,
			Shards: []ShardSpec{
				{Name: "alpha", Module: testModule(t, 6)},
				{Name: "beta", Module: testModule(t, 4)},
			},
		}
	}
	srv, err := New(mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("first close: %v", err)
	}

	srv2, err := New(mkOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close(ctx)
	for _, name := range []string{"alpha", "beta"} {
		if hits := srv2.ShardWarmHits(name); hits == 0 {
			t.Errorf("shard %s: no warm-start hits on reboot", name)
		}
	}
}
