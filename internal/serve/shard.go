package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"odin/internal/core"
	"odin/internal/ir"
	"odin/internal/persist"
	"odin/internal/progen"
	"odin/internal/telemetry"
)

// ShardSpec configures one engine shard: a program hosted behind its own
// supervisor with its own persistent cache, so shards fail, warm-start, and
// trip breakers independently.
type ShardSpec struct {
	// Name identifies the shard in routes, metrics labels, and the persist
	// layout. Required, must be path-safe (persist.ShardLayout enforces it).
	Name string
	// Program names a progen suite profile to generate the hosted module
	// from. Ignored when Module is set.
	Program string
	// Module hosts an explicit IR module instead of a generated profile.
	Module *ir.Module
	// CacheDir and SnapshotPath place the shard's persist tier. Normally
	// derived from the server's DataDir via persist.ShardLayout; explicit
	// values override. Empty means no persistence.
	CacheDir     string
	SnapshotPath string
	// Workers sets the shard engine's compile pool size (0 = engine
	// default).
	Workers int
	// QueueDepth bounds the shard supervisor's admission queue (0 =
	// supervisor default).
	QueueDepth int
}

// shard is one running engine: the unit of isolation in the fleet.
type shard struct {
	name    string
	program string
	eng     *core.Engine
	sup     *core.Supervisor
	reg     *telemetry.Registry
	// warmHits is the persist-tier hit count observed right after the boot
	// build — the shard's warm-start evidence, frozen so later traffic
	// doesn't dilute it.
	warmHits uint64
	// funcs lists the instrumentable (defined, non-empty) functions of the
	// hosted module, so clients can discover probe targets.
	funcs []string
	// site allocates shard-unique hit-site IDs for counter probes.
	site atomic.Int64

	// mu guards probes: probe ID → owning tenant, recorded at admission so
	// the fleet snapshot can attribute quarantines and active probes.
	mu     sync.Mutex
	probes map[int]probeRec
}

// probeRec is the control plane's per-probe bookkeeping.
type probeRec struct {
	Tenant string
	Spec   ProbeSpec
}

// newShard builds the shard's engine and supervisor and runs the boot build
// so the persist tier's warm-start evidence is in hand before traffic.
func newShard(spec ShardSpec) (*shard, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("serve: shard needs a name")
	}
	m := spec.Module
	program := spec.Program
	if m == nil {
		prof, ok := progen.ByName(spec.Program)
		if !ok {
			return nil, fmt.Errorf("serve: shard %s: unknown program %q", spec.Name, spec.Program)
		}
		m = prof.Generate()
		program = prof.Name
	}
	reg := telemetry.NewRegistry()
	eng, err := core.New(m, core.Options{
		Telemetry:     reg,
		ExtraBuiltins: []string{HitBuiltin},
		Workers:       spec.Workers,
		CacheDir:      spec.CacheDir,
		SnapshotPath:  spec.SnapshotPath,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: shard %s: %w", spec.Name, err)
	}
	sup := core.Supervise(eng, core.SupervisorOptions{QueueDepth: spec.QueueDepth})

	// Boot build through the supervisor so the image exists (and the warm
	// cache is consulted) before the shard takes traffic.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	tk, err := sup.SyncCtx(ctx)
	if err == nil {
		var res core.TicketResult
		if res, err = tk.Wait(ctx); err == nil {
			err = res.Err
		}
	}
	if err != nil {
		sup.Close()
		eng.Close()
		return nil, fmt.Errorf("serve: shard %s boot build: %w", spec.Name, err)
	}

	sh := &shard{
		name:    spec.Name,
		program: program,
		eng:     eng,
		sup:     sup,
		reg:     reg,
		probes:  map[int]probeRec{},
	}
	for _, f := range m.Funcs {
		if !f.IsDecl() && len(f.Blocks) > 0 {
			sh.funcs = append(sh.funcs, f.Name)
		}
	}
	if ps, ok := eng.PersistStats(); ok {
		sh.warmHits = ps.Hits
	}
	return sh, nil
}

// record remembers which tenant owns a freshly admitted probe.
func (sh *shard) record(id int, tenant string, spec ProbeSpec) {
	sh.mu.Lock()
	sh.probes[id] = probeRec{Tenant: tenant, Spec: spec}
	sh.mu.Unlock()
}

// tenantOf returns the owner of a probe ID, or "".
func (sh *shard) tenantOf(id int) string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.probes[id].Tenant
}

// persistStats snapshots the shard's persist tier, nil when persistence is
// off.
func (sh *shard) persistStats() *persist.Stats {
	ps, ok := sh.eng.PersistStats()
	if !ok {
		return nil
	}
	return &ps
}

// close drains the supervisor (bounded by ctx) and closes the engine.
// Draining rather than closing means already-admitted tickets still commit,
// and the supervisor snapshot lands before engine teardown. If ctx expires
// the drain keeps running in the background and the engine is deliberately
// left open — tearing it down under an active rebuild loop would race; the
// exiting process reclaims it.
func (sh *shard) close(ctx context.Context) error {
	if err := sh.sup.Drain(ctx); err != nil {
		return err
	}
	sh.eng.Close()
	return nil
}
