package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"odin/internal/core"
	"odin/internal/ir"
	"odin/internal/persist"
	"odin/internal/progen"
	"odin/internal/telemetry"
)

// ErrShardDead reports that the shard exhausted its recovery ladder —
// restarts, then hot-spare promotion — and was marked dead. Requests fail
// fast with 503 + Retry-After until an operator restarts the process.
var ErrShardDead = errors.New("serve: shard dead (recovery ladder exhausted)")

// deadRetryAfter is the Retry-After a dead shard advertises. Recovery needs
// an operator, so the interval is long — its job is only to stop retry
// storms, not to promise recovery.
const deadRetryAfter = 30 * time.Second

// ShardSpec configures one engine shard: a program hosted behind its own
// supervisor with its own persistent cache, so shards fail, warm-start, and
// trip breakers independently.
type ShardSpec struct {
	// Name identifies the shard in routes, metrics labels, and the persist
	// layout. Required, must be path-safe (persist.ShardLayout enforces it).
	Name string
	// Program names a progen suite profile to generate the hosted module
	// from. Ignored when Module is set.
	Program string
	// Module hosts an explicit IR module instead of a generated profile.
	Module *ir.Module
	// CacheDir, SnapshotPath, and JournalPath place the shard's persist
	// tier. Normally derived from the server's DataDir via
	// persist.ShardLayout; explicit values override. Empty means no
	// persistence (and no journal: probe state dies with the engine).
	CacheDir     string
	SnapshotPath string
	JournalPath  string
	// Workers sets the shard engine's compile pool size (0 = engine
	// default).
	Workers int
	// QueueDepth bounds the shard supervisor's admission queue (0 =
	// supervisor default).
	QueueDepth int
	// Replicas is the number of hot-spare standby engines kept booted
	// read-only from the same persist cache and converged through the
	// tenant-probe journal stream. Only 0 and 1 are meaningful today;
	// larger values clamp to 1.
	Replicas int
	// FaultHook threads a fault-injection hook into the writer engine
	// instances this shard boots (the serving primary and its restarts) —
	// the chaos-drill substrate (internal/faultinject sites, e.g.
	// supervisor:commit). Read-only hot spares run clean: a one-shot
	// injected fault must wedge the primary deterministically, not race
	// into the standby that is supposed to rescue it.
	FaultHook func(site string) error
	// Watchdog tunes the shard's health watchdog and recovery ladder.
	Watchdog WatchdogOptions
}

// engineSlot is one live engine + supervisor instance. The shard serves
// from exactly one slot at a time; lifecycle recovery swaps the whole slot
// atomically (restart in place, or hot-spare promotion).
type engineSlot struct {
	eng *core.Engine
	sup *core.Supervisor
	// warmHits is the persist-tier hit count observed right after the boot
	// build — warm-start evidence, frozen so later traffic doesn't dilute
	// it.
	warmHits uint64
	// readOnly marks a slot whose persist tier is read-only: a promoted
	// replica keeps serving from the primary's cache without ever taking
	// the writer lock. Commits stop being persisted until the next process
	// restart; correctness is unaffected.
	readOnly bool
	// booted is when the slot went live.
	booted time.Time
	// gen is the slot's installation generation (assigned when the slot
	// becomes the serving slot). Probe records carry the generation of the
	// slot they were registered on, so late commits that raced a swap can
	// tell whether the current slot already knows the probe.
	gen int64
}

// shard is one hosted program: a swappable engine slot plus the stable
// serve-level state that survives engine instances — the probe ledger, the
// tenant-probe journal, the telemetry registry, and the lifecycle manager.
type shard struct {
	name    string
	program string
	spec    ShardSpec
	// module is the pristine hosted module, retained (never adopted by an
	// engine) so restarts and replicas can boot new engines from it.
	module *ir.Module
	// reg is the shard's telemetry registry, shared by every engine
	// instance: handles are reused and gauge functions rebind on restart,
	// so fleet aggregation stays attached across failovers.
	reg *telemetry.Registry
	// funcs lists the instrumentable (defined, non-empty) functions of the
	// hosted module, so clients can discover probe targets.
	funcs []string
	// site allocates shard-unique hit-site IDs for counter probes; nextID
	// allocates serve-level probe IDs, which — unlike engine probe IDs —
	// are stable across engine restarts and promotions.
	site   atomic.Int64
	nextID atomic.Int64

	journal *probeJournal

	// mu guards the slot machinery (slot, swapping, gate, deadErr), the
	// probe ledger, and the replica pointer.
	mu       sync.Mutex
	slot     *engineSlot
	slotGen  int64
	swapping bool
	gate     chan struct{}
	deadErr  error
	probes   map[int64]*probeRec
	replica  *replica
	// pendingOps collects ops that commit while a swap is in flight; the
	// swap's endSwap replays them onto the incoming slot (and forwards
	// them to the hot spare), so no committed op is lost to a failover.
	pendingOps []journalOp

	lc      *lifecycle
	metrics *shardMetrics
}

// probeRec is the control plane's per-probe bookkeeping, keyed by the
// serve-level probe ID. EngID is the probe's ID on the *current* engine
// slot; replays and promotions rewrite it.
type probeRec struct {
	Tenant string
	Spec   ProbeSpec
	EngID  int
	Active bool
	// gen is the generation of the slot EngID is valid on.
	gen int64
}

// bootEngine builds one engine + supervisor over the shard's module and
// runs the boot build. readOnly engines never take the persist writer lock
// and never write snapshots — the hot-spare mode.
func (sh *shard) bootEngine(ctx context.Context, readOnly bool) (*engineSlot, error) {
	// Spares don't get the fault hook (see ShardSpec.FaultHook): chaos
	// faults target the writer so a drill wedges the serving slot, never
	// the standby meant to replace it.
	hook := sh.spec.FaultHook
	if readOnly {
		hook = nil
	}
	eng, err := core.New(sh.module, core.Options{
		Telemetry:     sh.reg,
		ExtraBuiltins: []string{HitBuiltin},
		Workers:       sh.spec.Workers,
		CacheDir:      sh.spec.CacheDir,
		SnapshotPath:  sh.spec.SnapshotPath,
		CacheReadOnly: readOnly,
		FaultHook:     hook,
	})
	if err != nil {
		return nil, fmt.Errorf("serve: shard %s: %w", sh.name, err)
	}
	sup := core.Supervise(eng, core.SupervisorOptions{QueueDepth: sh.spec.QueueDepth})
	// Boot build through the supervisor so the image exists (and the warm
	// cache is consulted) before the slot takes traffic.
	tk, err := sup.SyncCtx(ctx)
	if err == nil {
		var res core.TicketResult
		if res, err = tk.Wait(ctx); err == nil {
			err = res.Err
		}
	}
	if err != nil {
		sup.Close()
		eng.Close()
		return nil, fmt.Errorf("serve: shard %s boot build: %w", sh.name, err)
	}
	slot := &engineSlot{eng: eng, sup: sup, readOnly: readOnly, booted: time.Now()}
	if ps, ok := eng.PersistStats(); ok {
		slot.warmHits = ps.Hits
		if !readOnly {
			slot.readOnly = ps.ReadOnly
		}
	}
	return slot, nil
}

// replayInto reapplies reduced journal states to a fresh slot, returning
// the serve-ID → engine-ID mapping. Activation goes through the slot's
// supervisor (coalesced into one or two generations); probes whose final
// state is inactive are registered and then removed so later enables can
// find them. Individual failures (a poison probe re-quarantining itself)
// are tolerated — the probe stays registered, just not active.
func replayInto(ctx context.Context, slot *engineSlot, states []probeState, site *atomic.Int64) (map[int64]int, error) {
	engIDs := make(map[int64]int, len(states))
	type pending struct {
		id int64
		tk *core.Ticket
	}
	var adds, removes []pending
	for _, st := range states {
		engID, tk, err := slot.sup.AddProbeCtx(ctx, buildProbe(st.Spec, site.Add(1)))
		if err != nil {
			return nil, fmt.Errorf("replay add probe %d: %w", st.ID, err)
		}
		engIDs[st.ID] = engID
		adds = append(adds, pending{st.ID, tk})
	}
	for _, p := range adds {
		if _, err := p.tk.Wait(ctx); err != nil {
			return nil, fmt.Errorf("replay probe %d: %w", p.id, err)
		}
	}
	for _, st := range states {
		if st.Active {
			continue
		}
		tk, err := slot.sup.RemoveProbeCtx(ctx, engIDs[st.ID])
		if err != nil {
			continue // quarantined or racing; registration is what matters
		}
		removes = append(removes, pending{st.ID, tk})
	}
	for _, p := range removes {
		if _, err := p.tk.Wait(ctx); err != nil {
			return nil, fmt.Errorf("replay probe %d removal: %w", p.id, err)
		}
	}
	return engIDs, nil
}

// newShard builds the shard's first engine slot, replays the tenant-probe
// journal so probes survive process restarts, boots the configured hot
// spare, and starts the health watchdog.
func newShard(spec ShardSpec) (*shard, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("serve: shard needs a name")
	}
	m := spec.Module
	program := spec.Program
	if m == nil {
		prof, ok := progen.ByName(spec.Program)
		if !ok {
			return nil, fmt.Errorf("serve: shard %s: unknown program %q", spec.Name, spec.Program)
		}
		m = prof.Generate()
		program = prof.Name
	}
	spec.Watchdog = spec.Watchdog.withDefaults()
	sh := &shard{
		name:    spec.Name,
		program: program,
		spec:    spec,
		module:  m,
		reg:     telemetry.NewRegistry(),
		probes:  map[int64]*probeRec{},
	}
	sh.metrics = newShardMetrics(sh.reg)
	for _, f := range m.Funcs {
		if !f.IsDecl() && len(f.Blocks) > 0 {
			sh.funcs = append(sh.funcs, f.Name)
		}
	}

	var replayOps []journalOp
	if spec.JournalPath != "" {
		j, ops, err := openProbeJournal(spec.JournalPath, spec.FaultHook)
		if err != nil {
			// A broken journal must not keep the shard down: serve without
			// one (probe state won't survive the next restart) and count it.
			sh.metrics.journalFallbacks.Inc()
		} else {
			sh.journal = j
			replayOps = ops
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), spec.Watchdog.BootTimeout)
	defer cancel()
	slot, err := sh.bootEngine(ctx, false)
	if err != nil {
		sh.journal.close()
		return nil, err
	}
	if states := reduceJournal(replayOps); len(states) > 0 {
		engIDs, rerr := replayInto(ctx, slot, states, &sh.site)
		if rerr != nil {
			slot.sup.Close()
			slot.eng.Close()
			sh.journal.close()
			return nil, fmt.Errorf("serve: shard %s journal replay: %w", spec.Name, rerr)
		}
		for _, st := range states {
			sh.probes[st.ID] = &probeRec{Tenant: st.Tenant, Spec: st.Spec, EngID: engIDs[st.ID], Active: st.Active, gen: 1}
			if st.ID > sh.nextID.Load() {
				sh.nextID.Store(st.ID)
			}
		}
	}
	sh.slotGen = 1
	slot.gen = 1
	sh.slot = slot

	if spec.Replicas > 0 {
		// bootReplica registers itself as sh.replica; a shard without its
		// spare is degraded, not down.
		if _, rerr := bootReplica(sh); rerr != nil {
			sh.metrics.replicaFailures.Inc()
		}
	}

	sh.lc = newLifecycle(sh, spec.Watchdog)
	return sh, nil
}

// current returns the serving slot without parking (nil while a swap is in
// flight with no slot installed). Introspection paths use it.
func (sh *shard) current() *engineSlot {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.slot
}

// acquire returns the serving slot, parking the caller while a failover
// swap is in flight: requests arriving during the window wait for the swap
// to complete (bounded by their own ctx) and are then re-admitted against
// the new slot — never dropped. A dead shard fails fast with ErrShardDead.
func (sh *shard) acquire(ctx context.Context) (*engineSlot, error) {
	parked := false
	for {
		sh.mu.Lock()
		if sh.deadErr != nil {
			err := sh.deadErr
			sh.mu.Unlock()
			return nil, err
		}
		if !sh.swapping && sh.slot != nil {
			slot := sh.slot
			sh.mu.Unlock()
			return slot, nil
		}
		gate := sh.gate
		sh.mu.Unlock()
		if !parked {
			parked = true
			sh.metrics.parked.Inc()
		}
		select {
		case <-gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// stale reports whether slot is no longer the serving slot (a swap started
// or completed since the caller acquired it) — the signal to park and
// re-admit instead of failing a request that hit ErrSupervisorClosed.
func (sh *shard) stale(slot *engineSlot) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.swapping || sh.slot != slot
}

// beginSwap closes the admission gate: acquire parks until endSwap.
func (sh *shard) beginSwap() {
	sh.mu.Lock()
	sh.swapping = true
	sh.gate = make(chan struct{})
	sh.mu.Unlock()
}

// endSwap installs the new slot (nil keeps the old one, e.g. a failed
// recovery that will retry) and reopens the gate. engIDs is the serve-ID →
// engine-ID mapping the swap's replay produced; the ledger is rewritten to
// it under the same lock that installs the slot. Ops that committed during
// the swap window are then replayed onto the new slot and forwarded to the
// hot spare, in commit order.
func (sh *shard) endSwap(slot *engineSlot, engIDs map[int64]int) {
	var pending []journalOp
	var rep *replica
	sh.mu.Lock()
	if slot != nil {
		sh.slotGen++
		slot.gen = sh.slotGen
		for id, engID := range engIDs {
			if rec := sh.probes[id]; rec != nil {
				rec.EngID = engID
				rec.gen = sh.slotGen
			}
		}
		sh.slot = slot
		pending = sh.pendingOps
		sh.pendingOps = nil
		rep = sh.replica
	}
	sh.swapping = false
	if sh.gate != nil {
		close(sh.gate)
		sh.gate = nil
	}
	sh.mu.Unlock()
	if len(pending) > 0 {
		go func() {
			sh.applyOps(pending)
			if rep != nil {
				for _, op := range pending {
					rep.forward(op)
				}
			}
		}()
	}
}

// markDead records the terminal rung of the recovery ladder and unparks
// every waiter into the dead-shard fast path.
func (sh *shard) markDead(cause error) {
	sh.mu.Lock()
	sh.deadErr = fmt.Errorf("%w: %v", ErrShardDead, cause)
	sh.swapping = false
	sh.pendingOps = nil
	if sh.gate != nil {
		close(sh.gate)
		sh.gate = nil
	}
	sh.mu.Unlock()
}

// nextProbeID allocates a serve-level probe ID.
func (sh *shard) nextProbeID() int64 { return sh.nextID.Add(1) }

// record remembers a freshly admitted probe before its activation commits,
// so quarantine attribution works even when the activation fails. slot is
// the slot the probe was registered on.
func (sh *shard) record(slot *engineSlot, id int64, engID int, tenant string, spec ProbeSpec) {
	sh.mu.Lock()
	sh.probes[id] = &probeRec{Tenant: tenant, Spec: spec, EngID: engID, gen: slot.gen}
	sh.mu.Unlock()
}

// lookupProbe resolves a serve-level probe ID to its record (copy).
func (sh *shard) lookupProbe(id int64) (probeRec, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.probes[id]
	if !ok {
		return probeRec{}, false
	}
	return *rec, true
}

// committed journals one committed probe op, updates the ledger, and feeds
// the hot spare. slot is the slot the op committed on. Two races with
// failover are closed here: an op committing while a swap is in flight is
// parked in pendingOps (endSwap replays it onto the incoming slot), and an
// op that committed on a slot that has already been swapped out is
// re-applied to the current slot in the background. Either way the journal
// has the op first, so a crash mid-convergence is repaired by replay.
func (sh *shard) committed(slot *engineSlot, op journalOp) {
	sh.journal.append(op)
	sh.metrics.journalAppends.Inc()
	sh.mu.Lock()
	if rec := sh.probes[op.ID]; rec != nil {
		switch op.Op {
		case jopAdd, jopEnable:
			rec.Active = true
		case jopRemove:
			rec.Active = false
		}
	}
	if sh.swapping {
		sh.pendingOps = append(sh.pendingOps, op)
		sh.mu.Unlock()
		return
	}
	rep := sh.replica
	cur := sh.slot
	sh.mu.Unlock()
	if rep != nil {
		rep.forward(op)
	}
	if cur != nil && cur != slot {
		go sh.applyOps([]journalOp{op})
	}
}

// applyOps replays committed ops onto the current serving slot, in order.
// Used for late commits that raced a swap; best-effort (see committed).
func (sh *shard) applyOps(ops []journalOp) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, op := range ops {
		sh.applyOp(ctx, op)
	}
}

// applyOp converges the current slot with one committed op. The record's
// slot generation says whether the slot already knows the probe: an add
// whose record is already on the current generation was covered by the
// swap's replay and is skipped; a non-add op whose record is on an older
// generation targets a probe the slot never registered, so it is left for
// journal replay to repair.
func (sh *shard) applyOp(ctx context.Context, op journalOp) {
	sh.mu.Lock()
	slot := sh.slot
	rec := sh.probes[op.ID]
	if slot == nil || rec == nil {
		sh.mu.Unlock()
		return
	}
	current := rec.gen == slot.gen
	engID := rec.EngID
	spec := rec.Spec
	sh.mu.Unlock()
	switch op.Op {
	case jopAdd:
		if current {
			return
		}
		newID, tk, err := slot.sup.AddProbeCtx(ctx, buildProbe(spec, sh.site.Add(1)))
		if err != nil {
			return
		}
		sh.mu.Lock()
		if r := sh.probes[op.ID]; r != nil {
			r.EngID = newID
			r.gen = slot.gen
		}
		sh.mu.Unlock()
		tk.Wait(ctx)
	case jopEnable:
		if !current {
			return
		}
		if tk, err := slot.sup.EnableProbeCtx(ctx, engID); err == nil {
			tk.Wait(ctx)
		}
	case jopRemove:
		if !current {
			return
		}
		if tk, err := slot.sup.RemoveProbeCtx(ctx, engID); err == nil {
			tk.Wait(ctx)
		}
	case jopChange:
		if !current {
			return
		}
		if tk, err := slot.sup.MarkChangedCtx(ctx, engID); err == nil {
			tk.Wait(ctx)
		}
	}
}

// ledgerStates reduces the in-memory probe ledger to replayable states (the
// same shape a journal reduction yields) — the source for replica seeding
// and lagging-replica recovery.
func (sh *shard) ledgerStates() []probeState {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	out := make([]probeState, 0, len(sh.probes))
	for id, rec := range sh.probes {
		out = append(out, probeState{ID: id, Tenant: rec.Tenant, Spec: rec.Spec, Active: rec.Active})
	}
	return out
}

// warmHits reports the serving slot's boot-time warm-hit count.
func (sh *shard) warmHits() uint64 {
	if slot := sh.current(); slot != nil {
		return slot.warmHits
	}
	return 0
}

// persistStats snapshots the serving slot's persist tier, nil when
// persistence is off or no slot is live.
func (sh *shard) persistStats() *persist.Stats {
	slot := sh.current()
	if slot == nil {
		return nil
	}
	ps, ok := slot.eng.PersistStats()
	if !ok {
		return nil
	}
	return &ps
}

// quickClose tears the shard down without draining — construction-failure
// cleanup.
func (sh *shard) quickClose() {
	if sh.lc != nil {
		sh.lc.stopWatchdog()
	}
	sh.mu.Lock()
	rep := sh.replica
	sh.replica = nil
	slot := sh.slot
	sh.slot = nil
	sh.mu.Unlock()
	if rep != nil {
		rep.shutdown()
	}
	if slot != nil {
		slot.sup.Close()
		slot.eng.Close()
	}
	sh.journal.close()
}

// close stops the watchdog and replica, drains the serving supervisor
// (bounded by ctx), and closes the engine. Draining rather than closing
// means already-admitted tickets still commit, and the supervisor snapshot
// lands before engine teardown. If ctx expires the drain keeps running in
// the background and the engine is deliberately left open — tearing it down
// under an active rebuild would race; the exiting process reclaims it.
func (sh *shard) close(ctx context.Context) error {
	if sh.lc != nil {
		sh.lc.stopWatchdog()
	}
	sh.mu.Lock()
	rep := sh.replica
	sh.replica = nil
	slot := sh.slot
	sh.mu.Unlock()
	if rep != nil {
		rep.shutdown()
	}
	defer sh.journal.close()
	if slot == nil {
		return nil
	}
	if err := slot.sup.Drain(ctx); err != nil {
		return err
	}
	slot.eng.Close()
	return nil
}
