package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Aggregate merges several registries — typically one per engine shard —
// into a single fleet-wide export surface. Every sample from an attached
// registry is re-labeled with the aggregate's label key (e.g. shard="a"), so
// one /metrics scrape covers the whole fleet without the shards sharing any
// registration state or lock. Attaching is cheap and happens at setup;
// export walks the attached registries live, so per-shard updates need no
// extra plumbing.
type Aggregate struct {
	labelKey string

	mu    sync.Mutex
	names []string // attach order, for deterministic export
	regs  map[string]*Registry
}

// NewAggregate returns an empty aggregate that tags every exported sample
// with labelKey (e.g. "shard").
func NewAggregate(labelKey string) *Aggregate {
	return &Aggregate{labelKey: labelKey, regs: map[string]*Registry{}}
}

// Attach adds (or replaces) a named member registry. A nil registry is
// ignored, keeping the telemetry-off path free of special cases.
func (a *Aggregate) Attach(name string, r *Registry) {
	if a == nil || r == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.regs[name]; !ok {
		a.names = append(a.names, name)
	}
	a.regs[name] = r
}

// Registry returns the member registry attached under name, or nil.
func (a *Aggregate) Registry(name string) *Registry {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.regs[name]
}

// members snapshots the attached registries in attach order.
func (a *Aggregate) members() (names []string, regs []*Registry) {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, n := range a.names {
		names = append(names, n)
		regs = append(regs, a.regs[n])
	}
	return names, regs
}

// aggEntry is one member registry's metric with the member label merged in.
type aggEntry struct {
	e      *entry
	labels []string // member labels + the aggregate label, sorted by key
	owner  string
}

// WritePrometheus writes every attached registry's metrics in the Prometheus
// text exposition format with the aggregate label injected, families grouped
// across members and deterministically ordered. Nil aggregate writes nothing.
func (a *Aggregate) WritePrometheus(w io.Writer) error {
	if a == nil {
		return nil
	}
	names, regs := a.members()
	var all []aggEntry
	for i, r := range regs {
		for _, e := range r.sortedEntries() {
			merged := make([]string, 0, len(e.labels)+2)
			merged = append(merged, e.labels...)
			merged = append(merged, a.labelKey, names[i])
			all = append(all, aggEntry{e: e, labels: sortLabels(merged), owner: names[i]})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].e.name != all[j].e.name {
			return all[i].e.name < all[j].e.name
		}
		return all[i].owner < all[j].owner
	})
	lastFamily := ""
	for _, ae := range all {
		e := ae.e
		if e.name != lastFamily {
			lastFamily = e.name
			if err := a.writeHeader(w, regs, e); err != nil {
				return err
			}
		}
		ls := renderLabels(ae.labels)
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, ls, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, ls, e.g.Value())
		case kindGaugeFunc:
			var v int64
			if e.gf != nil {
				v = e.gf()
			}
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, ls, v)
		case kindHitVec:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, ls, e.hv.Total())
		case kindHistogram:
			err = writePromHistogram(w, e.name, e.h, ls)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHeader emits the HELP (first member that has it wins) and TYPE lines
// for a family.
func (a *Aggregate) writeHeader(w io.Writer, regs []*Registry, e *entry) error {
	for _, r := range regs {
		if help := r.helpFor(e.name); help != "" {
			if _, err := io.WriteString(w, "# HELP "+e.name+" "+help+"\n"); err != nil {
				return err
			}
			break
		}
	}
	typ := e.kind
	switch e.kind {
	case kindGaugeFunc:
		typ = "gauge"
	case kindHitVec:
		typ = "counter"
	}
	_, err := io.WriteString(w, "# TYPE "+e.name+" "+typ+"\n")
	return err
}

// Snapshot returns every member's metric snapshot keyed by member name.
func (a *Aggregate) Snapshot() map[string][]SnapshotMetric {
	if a == nil {
		return nil
	}
	names, regs := a.members()
	out := make(map[string][]SnapshotMetric, len(names))
	for i, r := range regs {
		out[names[i]] = r.Snapshot()
	}
	return out
}
