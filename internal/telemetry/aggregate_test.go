package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestAggregateInjectsLabelAndGroupsFamilies(t *testing.T) {
	a := NewRegistry()
	b := NewRegistry()
	a.Describe("odin_rebuilds_total", "rebuild generations")
	a.Counter("odin_rebuilds_total").Add(3)
	b.Counter("odin_rebuilds_total").Add(7)
	a.Gauge("odin_queue_depth").Set(2)
	b.Counter("odin_probe_hits_total", "probe", "p1").Add(5)

	agg := NewAggregate("shard")
	agg.Attach("alpha", a)
	agg.Attach("beta", b)

	var sb strings.Builder
	if err := agg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()

	for _, want := range []string{
		"# HELP odin_rebuilds_total rebuild generations\n",
		"# TYPE odin_rebuilds_total counter\n",
		`odin_rebuilds_total{shard="alpha"} 3` + "\n",
		`odin_rebuilds_total{shard="beta"} 7` + "\n",
		`odin_queue_depth{shard="alpha"} 2` + "\n",
		`odin_probe_hits_total{probe="p1",shard="beta"} 5` + "\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One TYPE line per family even when members span registries.
	if n := strings.Count(out, "# TYPE odin_rebuilds_total"); n != 1 {
		t.Errorf("want 1 TYPE line for odin_rebuilds_total, got %d:\n%s", n, out)
	}
}

func TestAggregateHistogramAndSnapshot(t *testing.T) {
	a := NewRegistry()
	h := a.Histogram("odin_ticket_seconds", nil)
	h.Observe(2 * time.Millisecond)
	h.Observe(80 * time.Millisecond)

	agg := NewAggregate("shard")
	agg.Attach("s0", a)

	var sb strings.Builder
	if err := agg.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, `odin_ticket_seconds_bucket{shard="s0",le="+Inf"} 2`) {
		t.Errorf("missing +Inf bucket with shard label:\n%s", out)
	}
	if !strings.Contains(out, `odin_ticket_seconds_count{shard="s0"} 2`) {
		t.Errorf("missing _count with shard label:\n%s", out)
	}

	snap := agg.Snapshot()
	if len(snap["s0"]) != 1 || snap["s0"][0].Count != 2 {
		t.Errorf("Snapshot: got %+v", snap)
	}
}

func TestAggregateNilSafety(t *testing.T) {
	var agg *Aggregate
	agg.Attach("x", NewRegistry()) // must not panic
	if err := agg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatalf("nil aggregate WritePrometheus: %v", err)
	}
	if agg.Snapshot() != nil {
		t.Error("nil aggregate Snapshot should be nil")
	}
	live := NewAggregate("shard")
	live.Attach("x", nil) // nil registry ignored
	if got := live.Registry("x"); got != nil {
		t.Errorf("nil registry should not attach, got %v", got)
	}
}
