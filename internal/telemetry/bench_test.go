package telemetry

import (
	"testing"
	"time"
)

// The increment-path benchmarks back the hot-path overhead claim: a live
// counter increment is one atomic add, a nil handle one branch, a histogram
// observation a short bounds scan plus three atomic adds. See EXPERIMENTS.md
// ("Telemetry overhead").

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i%1000) * time.Microsecond)
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Microsecond)
	}
}

func BenchmarkHitVecHit(b *testing.B) {
	v := NewRegistry().HitVec("bench_hits_total", 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Hit(int64(i & 1023))
	}
}

func BenchmarkHitVecHitNil(b *testing.B) {
	var v *HitVec
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Hit(int64(i & 1023))
	}
}
