// Package telemetry is Odin's observability subsystem: a metrics registry
// of atomic counters, gauges, and fixed-bucket duration histograms; a
// rebuild tracer that records per-rebuild span trees; and an opt-in HTTP
// introspection server exposing Prometheus text exposition, a JSON engine
// snapshot, and pprof.
//
// The whole package follows one contract: every handle type is safe to use
// with a nil receiver, and a nil receiver does nothing. Instrumented code
// therefore never branches on "is telemetry enabled" — it obtains handles
// once (a nil *Registry yields nil handles) and calls them unconditionally;
// with telemetry disabled each call is a single nil check, no allocation,
// no atomics. The increment path of a live Counter, Gauge, Histogram, or
// HitVec is likewise allocation-free: one or a few atomic operations on
// memory allocated at registration time.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is usable;
// a nil Counter discards increments.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. A nil Gauge discards updates.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefDurationBuckets are the default histogram bounds, spanning the
// microsecond-to-seconds range the rebuild pipeline operates in.
var DefDurationBuckets = []time.Duration{
	50 * time.Microsecond, 100 * time.Microsecond, 250 * time.Microsecond,
	500 * time.Microsecond, time.Millisecond, 2500 * time.Microsecond,
	5 * time.Millisecond, 10 * time.Millisecond, 25 * time.Millisecond,
	50 * time.Millisecond, 100 * time.Millisecond, 250 * time.Millisecond,
	500 * time.Millisecond, time.Second, 2500 * time.Millisecond,
	5 * time.Second,
}

// Histogram is a fixed-bucket duration histogram. Observations are three
// atomic adds; bounds are immutable after registration. A nil Histogram
// discards observations.
type Histogram struct {
	bounds  []time.Duration
	buckets []atomic.Uint64 // len(bounds)+1; the last bucket is +Inf
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	if len(bounds) == 0 {
		bounds = DefDurationBuckets
	}
	return &Histogram{
		bounds:  append([]time.Duration(nil), bounds...),
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// HitVec counts events per small-integer site ID — one atomic add per hit,
// no locks, no allocation. The vector size is fixed at registration (the
// tool knows its probe count); out-of-range IDs land in an overflow cell.
// A nil HitVec discards hits.
type HitVec struct {
	hits     []atomic.Uint64
	overflow atomic.Uint64
}

// Hit counts one event at site id.
func (v *HitVec) Hit(id int64) {
	if v == nil {
		return
	}
	if id >= 0 && id < int64(len(v.hits)) {
		v.hits[id].Add(1)
		return
	}
	v.overflow.Add(1)
}

// Len returns the number of addressable sites.
func (v *HitVec) Len() int {
	if v == nil {
		return 0
	}
	return len(v.hits)
}

// Value returns the count at site id (0 when out of range or nil).
func (v *HitVec) Value(id int64) uint64 {
	if v == nil || id < 0 || id >= int64(len(v.hits)) {
		return 0
	}
	return v.hits[id].Load()
}

// Total returns the sum over every site plus overflow.
func (v *HitVec) Total() uint64 {
	if v == nil {
		return 0
	}
	n := v.overflow.Load()
	for i := range v.hits {
		n += v.hits[i].Load()
	}
	return n
}

// Active returns how many sites have at least one hit.
func (v *HitVec) Active() int {
	if v == nil {
		return 0
	}
	n := 0
	for i := range v.hits {
		if v.hits[i].Load() > 0 {
			n++
		}
	}
	return n
}

// metric kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindGaugeFunc = "gaugefunc"
	kindHistogram = "histogram"
	kindHitVec    = "hitvec"
)

// entry is one registered metric instance (a family member).
type entry struct {
	name   string
	kind   string
	labels []string // alternating key, value; sorted by key at registration
	key    string   // name + rendered labels

	c  *Counter
	g  *Gauge
	gf func() int64
	h  *Histogram
	hv *HitVec
}

// labelString renders {k="v",...} or "".
func (e *entry) labelString() string { return renderLabels(e.labels) }

// renderLabels renders alternating key/value pairs as {k="v",...} or "".
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i := 0; i+1 < len(labels); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", labels[i], labels[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// Registry is a concurrency-safe collection of named metric families plus
// the rebuild tracer. Registration (Counter, Gauge, ...) is get-or-create
// and is intended to run once at setup; instrumented code keeps the
// returned handles and updates them lock-free. All methods are nil-safe:
// a nil *Registry returns nil handles, and nil handles discard updates,
// so a disabled pipeline pays only nil checks.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*entry
	help    map[string]string

	// Traces is the rebuild tracer attached to this registry. The engine
	// reaches it through Tracer(), which is nil-safe.
	Traces *Tracer
}

// NewRegistry returns an empty registry whose tracer keeps the last
// DefTraceCapacity rebuild traces.
func NewRegistry() *Registry {
	return &Registry{
		metrics: map[string]*entry{},
		help:    map[string]string{},
		Traces:  NewTracer(DefTraceCapacity),
	}
}

// Tracer returns the registry's rebuild tracer, or nil for a nil registry.
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.Traces
}

// Describe attaches Prometheus HELP text to a metric family name.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// lookup finds or creates the entry for (name, labels), enforcing kind
// consistency. labels must alternate key, value.
func (r *Registry) lookup(name, kind string, labels []string) *entry {
	if len(labels)%2 != 0 {
		panic("telemetry: labels must be key/value pairs: " + name)
	}
	labels = sortLabels(labels)
	key := name
	for i := 0; i+1 < len(labels); i += 2 {
		key += "\x00" + labels[i] + "\x00" + labels[i+1]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, kind: kind, labels: labels, key: key}
	r.metrics[key] = e
	return e
}

// sortLabels orders key/value pairs by key for a canonical identity.
func sortLabels(labels []string) []string {
	if len(labels) <= 2 {
		return labels
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	out := make([]string, 0, len(labels))
	for _, p := range kvs {
		out = append(out, p.k, p.v)
	}
	return out
}

// Counter returns the counter for name with the given label key/value
// pairs, creating it on first use. Nil registry returns nil.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kindCounter, labels)
	if e.c == nil {
		e.c = &Counter{}
	}
	return e.c
}

// Gauge returns the gauge for name with the given label key/value pairs.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kindGauge, labels)
	if e.g == nil {
		e.g = &Gauge{}
	}
	return e.g
}

// GaugeFunc registers a gauge whose value is computed by fn at export time
// (for mirroring externally owned counters, e.g. the fault injector's).
// Re-registering the same name replaces the function.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...string) {
	if r == nil {
		return
	}
	e := r.lookup(name, kindGaugeFunc, labels)
	e.gf = fn
}

// Histogram returns the duration histogram for name, creating it with the
// given bucket bounds (nil bounds = DefDurationBuckets) on first use.
func (r *Registry) Histogram(name string, bounds []time.Duration, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	e := r.lookup(name, kindHistogram, labels)
	if e.h == nil {
		e.h = newHistogram(bounds)
	}
	return e.h
}

// HitVec returns the per-site hit vector for name, creating it with the
// given site count on first use; later calls reuse the existing vector
// regardless of size (rebinds after a rebuild keep their counts).
func (r *Registry) HitVec(name string, size int, labels ...string) *HitVec {
	if r == nil {
		return nil
	}
	if size < 0 {
		size = 0
	}
	e := r.lookup(name, kindHitVec, labels)
	if e.hv == nil {
		e.hv = &HitVec{hits: make([]atomic.Uint64, size)}
	}
	return e.hv
}

// sortedEntries snapshots the registered entries sorted by family name then
// rendered labels, for deterministic export.
func (r *Registry) sortedEntries() []*entry {
	r.mu.Lock()
	out := make([]*entry, 0, len(r.metrics))
	for _, e := range r.metrics {
		out = append(out, e)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].key < out[j].key
	})
	return out
}

// helpFor returns the HELP text for a family, or "".
func (r *Registry) helpFor(name string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.help[name]
}

// seconds renders a duration as a Prometheus seconds value.
func seconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}

// WritePrometheus writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), deterministically ordered. Histograms
// emit cumulative le buckets in seconds plus _sum and _count; a HitVec
// emits one sample, the total across its sites.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	entries := r.sortedEntries()
	lastFamily := ""
	for _, e := range entries {
		if e.name != lastFamily {
			lastFamily = e.name
			if help := r.helpFor(e.name); help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.name, help); err != nil {
					return err
				}
			}
			typ := e.kind
			switch e.kind {
			case kindGaugeFunc:
				typ = "gauge"
			case kindHitVec:
				typ = "counter"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.name, typ); err != nil {
				return err
			}
		}
		ls := e.labelString()
		var err error
		switch e.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, ls, e.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, ls, e.g.Value())
		case kindGaugeFunc:
			var v int64
			if e.gf != nil {
				v = e.gf()
			}
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, ls, v)
		case kindHitVec:
			_, err = fmt.Fprintf(w, "%s%s %d\n", e.name, ls, e.hv.Total())
		case kindHistogram:
			err = writePromHistogram(w, e.name, e.h, ls)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram family member.
func writePromHistogram(w io.Writer, name string, h *Histogram, ls string) error {
	cum := uint64(0)
	inner := strings.TrimSuffix(strings.TrimPrefix(ls, "{"), "}")
	bucketLabels := func(le string) string {
		if inner == "" {
			return `{le="` + le + `"}`
		}
		return "{" + inner + `,le="` + le + `"}`
	}
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(seconds(b)), cum); err != nil {
			return err
		}
	}
	cum += h.buckets[len(h.bounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels("+Inf"), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, ls, seconds(h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, ls, h.Count())
	return err
}

// SnapshotMetric is one metric instance in a JSON snapshot.
type SnapshotMetric struct {
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Labels map[string]string `json:"labels,omitempty"`
	// Value carries counter counts, gauge values, and hit-vector totals.
	Value int64 `json:"value,omitempty"`
	// Histogram-only fields.
	Count   uint64   `json:"count,omitempty"`
	SumSecs float64  `json:"sum_seconds,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
	// HitVec-only fields: per-site counts for active sites (sparse).
	Sites map[string]uint64 `json:"sites,omitempty"`
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	LESecs float64 `json:"le_seconds"`
	Count  uint64  `json:"count"`
}

// Snapshot returns every registered metric's current value, sorted by name
// then labels, for the JSON introspection endpoint.
func (r *Registry) Snapshot() []SnapshotMetric {
	if r == nil {
		return nil
	}
	entries := r.sortedEntries()
	out := make([]SnapshotMetric, 0, len(entries))
	for _, e := range entries {
		m := SnapshotMetric{Name: e.name, Kind: e.kind}
		if len(e.labels) > 0 {
			m.Labels = map[string]string{}
			for i := 0; i+1 < len(e.labels); i += 2 {
				m.Labels[e.labels[i]] = e.labels[i+1]
			}
		}
		switch e.kind {
		case kindCounter:
			m.Value = int64(e.c.Value())
		case kindGauge:
			m.Value = e.g.Value()
		case kindGaugeFunc:
			if e.gf != nil {
				m.Value = e.gf()
			}
		case kindHitVec:
			m.Value = int64(e.hv.Total())
			for i := range e.hv.hits {
				if n := e.hv.hits[i].Load(); n > 0 {
					if m.Sites == nil {
						m.Sites = map[string]uint64{}
					}
					m.Sites[strconv.Itoa(i)] = n
				}
			}
			if n := e.hv.overflow.Load(); n > 0 {
				if m.Sites == nil {
					m.Sites = map[string]uint64{}
				}
				m.Sites["overflow"] = n
			}
		case kindHistogram:
			m.Count = e.h.Count()
			m.SumSecs = e.h.Sum().Seconds()
			cum := uint64(0)
			for i, b := range e.h.bounds {
				cum += e.h.buckets[i].Load()
				m.Buckets = append(m.Buckets, Bucket{LESecs: b.Seconds(), Count: cum})
			}
		}
		out = append(out, m)
	}
	return out
}
