package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilSafety: every handle and the registry itself must be fully usable
// through nil receivers — the zero-overhead contract of Options.Telemetry.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total")
	g := r.Gauge("x")
	h := r.Histogram("x_seconds", nil)
	v := r.HitVec("x_hits_total", 8)
	r.GaugeFunc("x_fn", func() int64 { return 1 })
	r.Describe("x_total", "help")
	c.Inc()
	c.Add(3)
	g.Set(7)
	g.Add(-2)
	h.Observe(time.Millisecond)
	v.Hit(3)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || v.Total() != 0 {
		t.Fatal("nil handles must discard updates")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if r.Snapshot() != nil || r.Tracer() != nil {
		t.Fatal("nil registry must export nothing")
	}

	var tr *Tracer
	trace := tr.StartRebuild()
	root := trace.Root()
	child := root.Child("stage")
	child.SetAttr("k", "v")
	child.EndErr(nil)
	root.End()
	if trace != nil || root != nil || child != nil {
		t.Fatal("nil tracer must produce nil spans")
	}
	if tr.Traces() != nil || tr.Last() != nil {
		t.Fatal("nil tracer must report no traces")
	}
}

// TestRegistryGetOrCreate: the same (name, labels) yields the same handle,
// label order does not matter, and different labels are distinct members.
func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("odin_link_total", "mode", "full")
	b := r.Counter("odin_link_total", "mode", "full")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	c := r.Counter("odin_link_total", "mode", "incremental")
	if a == c {
		t.Fatal("different labels must be distinct members")
	}
	x := r.Counter("multi_total", "b", "2", "a", "1")
	y := r.Counter("multi_total", "a", "1", "b", "2")
	if x != y {
		t.Fatal("label order must not matter")
	}
	// Reuse of a HitVec ignores the size (rebinds keep counts).
	v1 := r.HitVec("hits_total", 4)
	v1.Hit(2)
	v2 := r.HitVec("hits_total", 999)
	if v1 != v2 || v2.Len() != 4 || v2.Total() != 1 {
		t.Fatal("HitVec re-registration must reuse the existing vector")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch must panic at registration time")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

// TestConcurrentUpdates hammers one counter, gauge, histogram, and hit
// vector from many goroutines; totals must be exact. Run under -race this
// is the registry's concurrency proof.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	g := r.Gauge("g")
	h := r.Histogram("h_seconds", nil)
	v := r.HitVec("v_total", 16)
	const workers, iters = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i%1000) * time.Microsecond)
				v.Hit(int64(i % 16))
				v.Hit(1 << 40) // overflow cell
				// Concurrent registration of the same family member must
				// be safe and return the shared handle.
				if r.Counter("c_total") != c {
					t.Error("re-registration returned a different handle")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*iters {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*iters)
	}
	if g.Value() != workers*iters {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*iters)
	}
	if h.Count() != workers*iters {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if v.Total() != 2*workers*iters {
		t.Fatalf("hitvec total = %d, want %d", v.Total(), 2*workers*iters)
	}
	if v.Active() != 16 {
		t.Fatalf("hitvec active sites = %d, want 16", v.Active())
	}
}

// TestPrometheusGolden: a registry with fixed values must export exactly
// this text, in this order — valid Prometheus text exposition format.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Describe("odin_rebuilds_total", "Completed rebuilds.")
	r.Counter("odin_rebuilds_total").Add(5)
	r.Counter("odin_link_total", "mode", "full").Add(2)
	r.Counter("odin_link_total", "mode", "incremental").Add(9)
	r.Gauge("odin_active_probes").Set(42)
	r.GaugeFunc("odin_faultinject_injected", func() int64 { return 3 })
	h := r.Histogram("odin_link_seconds", []time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(time.Second)
	v := r.HitVec("odin_probe_hits_total", 4)
	v.Hit(0)
	v.Hit(3)
	v.Hit(3)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"# TYPE odin_active_probes gauge",
		"odin_active_probes 42",
		"# TYPE odin_faultinject_injected gauge",
		"odin_faultinject_injected 3",
		"# TYPE odin_link_seconds histogram",
		`odin_link_seconds_bucket{le="0.001"} 1`,
		`odin_link_seconds_bucket{le="0.01"} 3`,
		`odin_link_seconds_bucket{le="+Inf"} 4`,
		"odin_link_seconds_sum 1.0055",
		"odin_link_seconds_count 4",
		"# TYPE odin_link_total counter",
		`odin_link_total{mode="full"} 2`,
		`odin_link_total{mode="incremental"} 9`,
		"# TYPE odin_probe_hits_total counter",
		"odin_probe_hits_total 3",
		"# HELP odin_rebuilds_total Completed rebuilds.",
		"# TYPE odin_rebuilds_total counter",
		"odin_rebuilds_total 5",
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Fatalf("prometheus export mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSnapshotGolden: the JSON snapshot of the same registry must be stable
// and machine-readable.
func TestSnapshotGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("odin_rebuilds_total").Add(2)
	r.Gauge("odin_workers").Set(4)
	h := r.Histogram("odin_rebuild_seconds", []time.Duration{time.Millisecond})
	h.Observe(250 * time.Microsecond)
	v := r.HitVec("odin_probe_hits_total", 4)
	v.Hit(1)
	v.Hit(1)

	got, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"name":"odin_probe_hits_total","kind":"hitvec","value":2,"sites":{"1":2}},` +
		`{"name":"odin_rebuild_seconds","kind":"histogram","count":1,"sum_seconds":0.00025,` +
		`"buckets":[{"le_seconds":0.001,"count":1}]},` +
		`{"name":"odin_rebuilds_total","kind":"counter","value":2},` +
		`{"name":"odin_workers","kind":"gauge","value":4}]`
	if string(got) != want {
		t.Fatalf("snapshot mismatch:\n got %s\nwant %s", got, want)
	}
}

// TestHistogramBounds: observations land in the right cumulative buckets.
func TestHistogramBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", []time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(time.Millisecond)      // le=0.001 (boundary is inclusive)
	h.Observe(time.Millisecond + 1)  // le=0.01
	h.Observe(20 * time.Millisecond) // +Inf
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.buckets[0].Load() != 1 || h.buckets[1].Load() != 1 || h.buckets[2].Load() != 1 {
		t.Fatalf("bucket spread = %d/%d/%d, want 1/1/1",
			h.buckets[0].Load(), h.buckets[1].Load(), h.buckets[2].Load())
	}
}
