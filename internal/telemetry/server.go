package telemetry

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the live introspection endpoint: Prometheus text exposition at
// /metrics, a JSON snapshot of tool status, metrics, and recent rebuild
// traces at /debug/odin, a human-readable flame summary of the last rebuild
// at /debug/odin/trace, and net/http/pprof under /debug/pprof/. It is
// opt-in: nothing in the engine starts one; tools do, via -metrics-addr.
type Server struct {
	reg    *Registry
	status func() any
	ln     net.Listener
	srv    *http.Server
	start  time.Time
}

// Serve starts an introspection server for reg on addr (host:port; port 0
// picks a free port). status, when non-nil, is invoked per /debug/odin
// request and its JSON-marshaled result embedded in the snapshot — tools
// pass a closure over engine state. The server runs until Close.
func Serve(addr string, reg *Registry, status func() any) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{reg: reg, status: status, ln: ln, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/odin", s.handleSnapshot)
	mux.HandleFunc("/debug/odin/trace", s.handleTrace)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) //nolint:errcheck // Serve returns ErrServerClosed on Close
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w) //nolint:errcheck // client disconnects only
}

// snapshotDoc is the /debug/odin response body.
type snapshotDoc struct {
	UptimeSecs float64          `json:"uptime_seconds"`
	Status     any              `json:"status,omitempty"`
	Metrics    []SnapshotMetric `json:"metrics"`
	Traces     []*Trace         `json:"traces,omitempty"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	doc := snapshotDoc{
		UptimeSecs: time.Since(s.start).Seconds(),
		Metrics:    s.reg.Snapshot(),
		Traces:     s.reg.Tracer().Traces(),
	}
	if s.status != nil {
		doc.Status = s.status()
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // client disconnects only
}

func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	last := s.reg.Tracer().Last()
	if last == nil {
		w.Write([]byte("no rebuild traces recorded\n")) //nolint:errcheck
		return
	}
	w.Write([]byte(last.FlameSummary())) //nolint:errcheck
}
