package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestServerEndpoints: /metrics serves Prometheus text, /debug/odin serves
// the JSON snapshot with status and traces, /debug/odin/trace the flame
// summary, and pprof answers.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("odin_rebuilds_total").Add(3)
	reg.Histogram("odin_rebuild_seconds", nil).Observe(2 * time.Millisecond)
	trace := reg.Tracer().StartRebuild()
	trace.Root().Child("link").End()
	trace.Root().End()

	srv, err := Serve("127.0.0.1:0", reg, func() any {
		return map[string]any{"fragments": 12}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, needle := range []string{
		"# TYPE odin_rebuilds_total counter",
		"odin_rebuilds_total 3",
		"odin_rebuild_seconds_count 1",
		`odin_rebuild_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, needle) {
			t.Fatalf("/metrics missing %q:\n%s", needle, body)
		}
	}

	code, body = get(t, base+"/debug/odin")
	if code != http.StatusOK {
		t.Fatalf("/debug/odin status %d", code)
	}
	var doc struct {
		UptimeSecs float64           `json:"uptime_seconds"`
		Status     map[string]any    `json:"status"`
		Metrics    []SnapshotMetric  `json:"metrics"`
		Traces     []json.RawMessage `json:"traces"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/odin not JSON: %v\n%s", err, body)
	}
	if doc.Status["fragments"] != float64(12) {
		t.Fatalf("status not embedded: %v", doc.Status)
	}
	if len(doc.Metrics) == 0 || len(doc.Traces) != 1 {
		t.Fatalf("snapshot has %d metrics, %d traces", len(doc.Metrics), len(doc.Traces))
	}

	code, body = get(t, base+"/debug/odin/trace")
	if code != http.StatusOK || !strings.Contains(body, "rebuild #1") {
		t.Fatalf("/debug/odin/trace = %d %q", code, body)
	}

	code, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}
