package telemetry

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// DefTraceCapacity is how many rebuild traces a registry's tracer keeps.
const DefTraceCapacity = 8

// Attr is one key/value annotation on a span.
type Attr struct {
	K string `json:"k"`
	V string `json:"v"`
}

// Span is one timed node in a rebuild trace: the rebuild itself, one
// fragment, one pipeline stage, or one optimizer pass. Spans form a tree;
// children may be created from concurrent compile workers (Child locks the
// parent). All methods are nil-safe so instrumented code runs unchanged
// with tracing disabled.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	dur      time.Duration
	ended    bool
	errMsg   string
	attrs    []Attr
	children []*Span
}

// newSpan starts a span now.
func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a new child span under s. Returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := newSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// StaticChild attaches an already-completed child span with an explicit
// start and duration — how the per-pass observations reported by the
// optimizer after the fact become spans.
func (s *Span) StaticChild(name string, start time.Time, dur time.Duration) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: start, dur: dur, ended: true}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SpanObs is one already-completed observation for StaticChildren — the
// allocation-lean batch form of StaticChild. Attrs is aliased, not copied,
// so callers may share a read-only backing slice across observations.
type SpanObs struct {
	Name  string
	Start time.Time
	Dur   time.Duration
	Attrs []Attr
}

// StaticChildren attaches a batch of completed child spans using a single
// backing array, costing two allocations regardless of batch size. The
// compile pool uses it to attach all of a fragment's per-pass spans at once
// so per-pass tracing stays cheap on the hot rebuild path.
func (s *Span) StaticChildren(obs []SpanObs) {
	if s == nil || len(obs) == 0 {
		return
	}
	backing := make([]Span, len(obs))
	ptrs := make([]*Span, len(obs))
	for i, o := range obs {
		backing[i] = Span{name: o.Name, start: o.Start, dur: o.Dur, ended: true, attrs: o.Attrs}
		ptrs[i] = &backing[i]
	}
	s.mu.Lock()
	s.children = append(s.children, ptrs...)
	s.mu.Unlock()
}

// SetAttr annotates the span.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{K: k, V: v})
	s.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(k string, v int64) {
	s.SetAttr(k, strconv.FormatInt(v, 10))
}

// End closes the span, fixing its duration. Repeated End calls keep the
// first duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// EndErr closes the span and records the error (nil err is a plain End).
func (s *Span) EndErr(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	if err != nil && s.errMsg == "" {
		s.errMsg = err.Error()
	}
	s.mu.Unlock()
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Dur returns the span duration (0 until ended).
func (s *Span) Dur() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

// Err returns the recorded error message, or "".
func (s *Span) Err() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.errMsg
}

// Attr returns the value of the named attribute, or "".
func (s *Span) Attr(k string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.K == k {
			return a.V
		}
	}
	return ""
}

// Children returns a snapshot of the span's children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Find returns the first child (depth-first) with the given name, or nil.
func (s *Span) Find(name string) *Span {
	if s == nil {
		return nil
	}
	for _, c := range s.Children() {
		if c.Name() == name {
			return c
		}
		if f := c.Find(name); f != nil {
			return f
		}
	}
	return nil
}

// spanJSON is the exported wire form of a span.
type spanJSON struct {
	Name     string     `json:"name"`
	StartUS  int64      `json:"start_us"`
	DurUS    int64      `json:"dur_us"`
	Err      string     `json:"err,omitempty"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []spanJSON `json:"children,omitempty"`
}

// wire converts the span tree to its JSON form under each node's lock.
func (s *Span) wire() spanJSON {
	s.mu.Lock()
	j := spanJSON{
		Name:    s.name,
		StartUS: s.start.UnixMicro(),
		DurUS:   s.dur.Microseconds(),
		Err:     s.errMsg,
		Attrs:   append([]Attr(nil), s.attrs...),
	}
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range kids {
		j.Children = append(j.Children, c.wire())
	}
	return j
}

// MarshalJSON renders the span tree.
func (s *Span) MarshalJSON() ([]byte, error) {
	if s == nil {
		return []byte("null"), nil
	}
	return json.Marshal(s.wire())
}

// Trace is one rebuild's span tree.
type Trace struct {
	// ID is the tracer-assigned rebuild sequence number, starting at 1.
	ID   int64 `json:"id"`
	root *Span
}

// Root returns the rebuild's root span (nil-safe).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// MarshalJSON renders the trace with its full span tree.
func (t *Trace) MarshalJSON() ([]byte, error) {
	if t == nil {
		return []byte("null"), nil
	}
	return json.Marshal(struct {
		ID   int64 `json:"id"`
		Root *Span `json:"root"`
	}{t.ID, t.root})
}

// FlameSummary renders the trace as an indented, human-readable tree:
// span name, duration, share of parent time, attributes, and errors.
func (t *Trace) FlameSummary() string {
	if t == nil || t.root == nil {
		return ""
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "rebuild #%d\n", t.ID)
	writeFlame(&sb, t.root, 0, t.root.Dur())
	return sb.String()
}

func writeFlame(sb *strings.Builder, s *Span, depth int, parent time.Duration) {
	s.mu.Lock()
	name, dur, errMsg := s.name, s.dur, s.errMsg
	attrs := append([]Attr(nil), s.attrs...)
	kids := append([]*Span(nil), s.children...)
	s.mu.Unlock()

	fmt.Fprintf(sb, "%s%-*s %10s", strings.Repeat("  ", depth), 24-2*depth, name, dur.Round(time.Microsecond))
	if parent > 0 && depth > 0 {
		fmt.Fprintf(sb, " %5.1f%%", 100*float64(dur)/float64(parent))
	}
	for _, a := range attrs {
		fmt.Fprintf(sb, " %s=%s", a.K, a.V)
	}
	if errMsg != "" {
		fmt.Fprintf(sb, " ERR=%q", errMsg)
	}
	sb.WriteByte('\n')
	for _, c := range kids {
		writeFlame(sb, c, depth+1, dur)
	}
}

// Tracer keeps a bounded ring of rebuild traces, newest last. A nil Tracer
// produces nil traces, whose nil root spans swallow the whole span API.
type Tracer struct {
	mu   sync.Mutex
	next int64
	keep int
	ring []*Trace
}

// NewTracer returns a tracer that retains the last keep traces (keep <= 0
// selects DefTraceCapacity).
func NewTracer(keep int) *Tracer {
	if keep <= 0 {
		keep = DefTraceCapacity
	}
	return &Tracer{keep: keep}
}

// StartRebuild opens a new trace whose root span starts now. The trace is
// retained immediately, so in-flight rebuilds are visible to introspection.
func (t *Tracer) StartRebuild() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.next++
	tr := &Trace{ID: t.next, root: newSpan("rebuild")}
	t.ring = append(t.ring, tr)
	if len(t.ring) > t.keep {
		t.ring = append([]*Trace(nil), t.ring[len(t.ring)-t.keep:]...)
	}
	t.mu.Unlock()
	return tr
}

// Traces returns the retained traces, oldest first.
func (t *Tracer) Traces() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Trace(nil), t.ring...)
}

// Last returns the most recent trace, or nil.
func (t *Tracer) Last() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.ring) == 0 {
		return nil
	}
	return t.ring[len(t.ring)-1]
}

// SpanNames returns the sorted multiset of span names in a trace — a quick
// structural fingerprint for tests.
func SpanNames(t *Trace) []string {
	var out []string
	var walk func(s *Span)
	walk = func(s *Span) {
		if s == nil {
			return
		}
		out = append(out, s.Name())
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(t.Root())
	sort.Strings(out)
	return out
}
