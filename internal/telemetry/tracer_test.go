package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanTree: spans nest, attributes and errors attach, and the JSON form
// preserves the tree.
func TestSpanTree(t *testing.T) {
	tr := NewTracer(4)
	trace := tr.StartRebuild()
	root := trace.Root()
	root.SetAttrInt("scheduled", 3)
	frag := root.Child("fragment")
	frag.SetAttrInt("id", 7)
	mat := frag.Child("materialize")
	mat.End()
	op := frag.Child("opt")
	op.StaticChild("constprop", time.Now().Add(-time.Millisecond), time.Millisecond)
	op.EndErr(errors.New("boom"))
	frag.EndErr(errors.New("boom"))
	root.End()

	if trace.ID != 1 {
		t.Fatalf("trace ID = %d, want 1", trace.ID)
	}
	if got := root.Attr("scheduled"); got != "3" {
		t.Fatalf("attr = %q", got)
	}
	if f := root.Find("constprop"); f == nil || f.Dur() != time.Millisecond {
		t.Fatalf("Find(constprop) = %v", f)
	}
	if root.Find("opt").Err() != "boom" {
		t.Fatal("error not attached to opt span")
	}
	names := SpanNames(trace)
	want := []string{"constprop", "fragment", "materialize", "opt", "rebuild"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("span names = %v, want %v", names, want)
	}

	raw, err := json.Marshal(trace)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID   int64 `json:"id"`
		Root struct {
			Name     string `json:"name"`
			Children []struct {
				Name     string `json:"name"`
				Err      string `json:"err"`
				Children []struct {
					Name string `json:"name"`
				} `json:"children"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != 1 || decoded.Root.Name != "rebuild" ||
		len(decoded.Root.Children) != 1 || decoded.Root.Children[0].Err != "boom" ||
		len(decoded.Root.Children[0].Children) != 2 {
		t.Fatalf("JSON tree malformed: %s", raw)
	}

	flame := trace.FlameSummary()
	for _, needle := range []string{"rebuild #1", "fragment", "id=7", `ERR="boom"`, "constprop"} {
		if !strings.Contains(flame, needle) {
			t.Fatalf("flame summary missing %q:\n%s", needle, flame)
		}
	}
}

// TestTracerRing: the tracer keeps only the newest traces, oldest first.
func TestTracerRing(t *testing.T) {
	tr := NewTracer(3)
	for i := 0; i < 5; i++ {
		trace := tr.StartRebuild()
		trace.Root().End()
	}
	traces := tr.Traces()
	if len(traces) != 3 {
		t.Fatalf("ring kept %d traces, want 3", len(traces))
	}
	if traces[0].ID != 3 || traces[2].ID != 5 {
		t.Fatalf("ring IDs = %d..%d, want 3..5", traces[0].ID, traces[2].ID)
	}
	if tr.Last().ID != 5 {
		t.Fatalf("Last = %d", tr.Last().ID)
	}
}

// TestSpanConcurrentChildren: concurrent workers attaching children to one
// parent (the compile span during a parallel rebuild) must be safe and lose
// nothing. Run under -race.
func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer(1)
	trace := tr.StartRebuild()
	comp := trace.Root().Child("compile")
	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				fs := comp.Child("fragment")
				fs.SetAttrInt("id", int64(w*each+i))
				fs.Child("materialize").End()
				fs.End()
			}
		}(w)
	}
	wg.Wait()
	comp.End()
	trace.Root().End()
	if got := len(comp.Children()); got != workers*each {
		t.Fatalf("compile span has %d children, want %d", got, workers*each)
	}
	if _, err := json.Marshal(trace); err != nil {
		t.Fatal(err)
	}
}
