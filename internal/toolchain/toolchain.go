// Package toolchain bundles the standard compile-and-link flow: optimize a
// module, lower it to an object, and link it against the runtime builtins.
// It is the "plain compiler" used by baselines and tests; Odin's engine
// (internal/core) drives the same stages fragment-by-fragment instead.
package toolchain

import (
	"sort"
	"time"

	"odin/internal/codegen"
	"odin/internal/ir"
	"odin/internal/link"
	"odin/internal/obj"
	"odin/internal/opt"
	"odin/internal/rt"
)

// StdBuiltins returns the runtime builtin symbol list (sorted) plus any
// extra hook names.
func StdBuiltins(extra ...string) []string {
	var names []string
	for n := range rt.StdlibSigs {
		names = append(names, n)
	}
	names = append(names, extra...)
	sort.Strings(names)
	return names
}

// StageTimes records how long each pipeline stage took; the Figure 3
// experiment reports these.
type StageTimes struct {
	Optimize time.Duration
	CodeGen  time.Duration
	Link     time.Duration
}

// Build optimizes m in place at the given level, compiles, and links it.
func Build(m *ir.Module, level int, extraBuiltins ...string) (*link.Executable, *StageTimes, error) {
	return BuildOpts(m, level, codegen.Options{}, extraBuiltins...)
}

// BuildOpts is Build with explicit code-generation options.
func BuildOpts(m *ir.Module, level int, cg codegen.Options, extraBuiltins ...string) (*link.Executable, *StageTimes, error) {
	st := &StageTimes{}
	t0 := time.Now()
	opt.Optimize(m, &opt.Options{Level: level})
	st.Optimize = time.Since(t0)

	t1 := time.Now()
	o, err := codegen.CompileModuleOpts(m, cg)
	if err != nil {
		return nil, st, err
	}
	st.CodeGen = time.Since(t1)

	t2 := time.Now()
	exe, err := link.Link([]*obj.Object{o}, StdBuiltins(extraBuiltins...))
	st.Link = time.Since(t2)
	if err != nil {
		return nil, st, err
	}
	return exe, st, nil
}

// BuildPreserving clones m first so the caller keeps the pristine module.
func BuildPreserving(m *ir.Module, level int, extraBuiltins ...string) (*link.Executable, *StageTimes, error) {
	clone, _ := ir.CloneModule(m)
	return Build(clone, level, extraBuiltins...)
}
