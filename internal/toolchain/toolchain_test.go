package toolchain

import (
	"sort"
	"testing"

	"odin/internal/ir"
	"odin/internal/irtext"
	"odin/internal/vm"
)

const src = `
declare func @print_i64(%v: i64) -> void
func @main() -> i64 {
entry:
  %a = add i64 40, 2
  call void @print_i64(i64 %a)
  ret i64 %a
}
`

func TestBuildRunsEndToEnd(t *testing.T) {
	m := irtext.MustParse("m", src)
	exe, st, err := Build(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Optimize < 0 || st.CodeGen < 0 || st.Link < 0 {
		t.Fatal("negative stage times")
	}
	mach := vm.New(exe)
	ret, err := mach.Run("main")
	if err != nil || ret != 42 {
		t.Fatalf("ret=%d err=%v", ret, err)
	}
	if mach.Env.Out.String() != "42\n" {
		t.Fatalf("out=%q", mach.Env.Out.String())
	}
}

func TestBuildPreservingKeepsModule(t *testing.T) {
	m := irtext.MustParse("m", src)
	before := ir.Print(m)
	if _, _, err := BuildPreserving(m, 2); err != nil {
		t.Fatal(err)
	}
	if ir.Print(m) != before {
		t.Fatal("BuildPreserving mutated the module")
	}
	// Build (non-preserving) optimizes in place: the add should fold.
	if _, _, err := Build(m, 2); err != nil {
		t.Fatal(err)
	}
	if ir.Print(m) == before {
		t.Fatal("Build did not optimize in place")
	}
}

func TestStdBuiltinsSortedAndExtended(t *testing.T) {
	bs := StdBuiltins("zzz_hook", "aaa_hook")
	if !sort.StringsAreSorted(bs) {
		t.Fatalf("builtins not sorted: %v", bs)
	}
	found := map[string]bool{}
	for _, b := range bs {
		found[b] = true
	}
	for _, want := range []string{"printf", "puts", "abort", "write_byte", "print_i64", "zzz_hook", "aaa_hook"} {
		if !found[want] {
			t.Fatalf("missing builtin %q in %v", want, bs)
		}
	}
}

func TestBuildLevelZeroSkipsOptimization(t *testing.T) {
	m := irtext.MustParse("m", src)
	exe0, _, err := BuildPreserving(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	exe2, _, err := BuildPreserving(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	if exe0.CodeSize() <= exe2.CodeSize() {
		t.Fatalf("O0 (%d instrs) should be bigger than O2 (%d)", exe0.CodeSize(), exe2.CodeSize())
	}
	// Same behaviour regardless.
	m0, m2 := vm.New(exe0), vm.New(exe2)
	r0, _ := m0.Run("main")
	r2, _ := m2.Run("main")
	if r0 != r2 {
		t.Fatalf("O0 and O2 disagree: %d vs %d", r0, r2)
	}
}
