// Package vm executes linked machine code with a deterministic cycle cost
// model. It stands in for the hardware in the paper's evaluation: all
// "execution duration" metrics are cycle counts reported by this engine.
package vm

import (
	"odin/internal/interp"
	"odin/internal/ir"
	"odin/internal/link"
	"odin/internal/mir"
	"odin/internal/rt"
)

// CallPenalty and TakenBranchPenalty are engine-level costs added on top of
// the per-instruction costs.
const (
	TakenBranchPenalty = 1
	BuiltinCallCost    = 8
)

// Machine executes one program image.
type Machine struct {
	Exe *link.Executable
	Env *rt.Env

	// Cycles is the accumulated cycle count across Run calls.
	Cycles int64

	regs [mir.NumRegs]int64
}

// New loads the executable's data segment into a fresh environment.
func New(exe *link.Executable) *Machine {
	env := rt.NewEnv()
	copy(env.Mem[rt.GlobalBase:], exe.Data)
	return &Machine{Exe: exe, Env: env}
}

// Reset reloads the data segment and clears cycles; used between fuzz runs
// when a pristine program state is required.
func (m *Machine) Reset() {
	for i := range m.Env.Mem {
		m.Env.Mem[i] = 0
	}
	copy(m.Env.Mem[rt.GlobalBase:], m.Exe.Data)
	m.Env.Out.Reset()
	m.Env.Steps = 0
	m.Cycles = 0
}

type frame struct {
	fn int
	pc int
	sp int64
}

// Run executes the named exported function with up to six register
// arguments, returning the r0 result.
func (m *Machine) Run(name string, args ...int64) (int64, error) {
	fi, ok := m.Exe.Lookup(name)
	if !ok {
		return 0, rt.Trapf("no such function %q", name)
	}
	if len(args) > mir.MaxRegArgs {
		return 0, rt.Trapf("too many arguments")
	}
	for i := range m.regs {
		m.regs[i] = 0
	}
	for i, a := range args {
		m.regs[i] = a
	}
	m.regs[mir.SP] = rt.StackTop
	return m.exec(fi)
}

const maxCallDepth = 400

func (m *Machine) exec(entry int) (int64, error) {
	env := m.Env
	var stack []frame
	fn := entry
	pc := 0
	code := m.Exe.Funcs[fn].Code

	for {
		if pc < 0 || pc >= len(code) {
			return 0, rt.Trapf("pc %d out of range in %s", pc, m.Exe.Funcs[fn].Name)
		}
		in := &code[pc]
		m.Cycles += in.Cycles()
		if err := env.Step(); err != nil {
			return 0, err
		}

		switch in.Op {
		case mir.Nop:
			pc++
		case mir.MovReg:
			m.regs[in.Rd] = m.regs[in.Rs1]
			pc++
		case mir.MovImm:
			m.regs[in.Rd] = in.Imm
			pc++
		case mir.ALU:
			v, err := interp.EvalBinOp(in.ALUOp, m.regs[in.Rs1], m.regs[in.Rs2], in.Width)
			if err != nil {
				return 0, err
			}
			m.regs[in.Rd] = v
			pc++
		case mir.ALUImm:
			v, err := interp.EvalBinOp(in.ALUOp, m.regs[in.Rs1], in.Imm, in.Width)
			if err != nil {
				return 0, err
			}
			m.regs[in.Rd] = v
			pc++
		case mir.CmpSet:
			if ir.EvalPred(in.Pred, m.regs[in.Rs1], m.regs[in.Rs2], in.Width) {
				m.regs[in.Rd] = 1
			} else {
				m.regs[in.Rd] = 0
			}
			pc++
		case mir.Ext:
			if in.SignExt {
				m.regs[in.Rd] = m.regs[in.Rs1]
			} else {
				m.regs[in.Rd] = int64(ir.ZeroExtend(m.regs[in.Rs1], in.Width))
			}
			pc++
		case mir.TruncW:
			m.regs[in.Rd] = ir.TruncToWidth(m.regs[in.Rs1], in.Width)
			pc++
		case mir.Load:
			v, err := env.Load(m.regs[in.Rs1]+in.Imm, in.Size)
			if err != nil {
				return 0, err
			}
			m.regs[in.Rd] = v
			pc++
		case mir.Store:
			if err := env.Store(m.regs[in.Rs1]+in.Imm, in.Size, m.regs[in.Rs2]); err != nil {
				return 0, err
			}
			pc++
		case mir.Lea:
			m.regs[in.Rd] = in.Imm
			pc++
		case mir.Jmp:
			pc = in.Target
			m.Cycles += TakenBranchPenalty
		case mir.JmpIf:
			if m.regs[in.Rs1] != 0 {
				pc = in.Target
				m.Cycles += TakenBranchPenalty
			} else {
				pc++
			}
		case mir.Call:
			if in.FuncIdx < 0 {
				bi := -(in.FuncIdx + 1)
				name := m.Exe.Builtins[bi]
				fnB, ok := env.Builtins[name]
				if !ok {
					return 0, rt.Trapf("builtin %q not registered", name)
				}
				m.Cycles += BuiltinCallCost
				r, err := fnB(env, []int64{m.regs[0], m.regs[1], m.regs[2], m.regs[3], m.regs[4], m.regs[5]})
				if err != nil {
					return 0, err
				}
				m.regs[0] = r
				pc++
				continue
			}
			if len(stack) >= maxCallDepth {
				return 0, rt.Trapf("call depth exceeded")
			}
			stack = append(stack, frame{fn: fn, pc: pc + 1, sp: m.regs[mir.SP]})
			fn = in.FuncIdx
			code = m.Exe.Funcs[fn].Code
			pc = 0
		case mir.Ret:
			if len(stack) == 0 {
				return m.regs[0], nil
			}
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			fn, pc = fr.fn, fr.pc
			m.regs[mir.SP] = fr.sp
			code = m.Exe.Funcs[fn].Code
		case mir.Enter:
			m.regs[mir.SP] -= in.Imm
			if m.regs[mir.SP] < rt.InputBase+rt.InputMax {
				return 0, rt.Trapf("stack overflow")
			}
			pc++
		case mir.Leave:
			m.regs[mir.SP] += in.Imm
			pc++
		case mir.Trap:
			return 0, rt.Trapf("trap executed in %s", m.Exe.Funcs[fn].Name)
		case mir.CostSim:
			pc++
		case mir.Probe:
			// Binary-instrumentation counter bump (saturating byte).
			if in.ProbeAddr > 0 && in.ProbeAddr < int64(len(env.Mem)) {
				if env.Mem[in.ProbeAddr] != 0xFF {
					env.Mem[in.ProbeAddr]++
				}
			}
			pc++
		default:
			return 0, rt.Trapf("bad machine op %s", in.Op)
		}
	}
}

// RunProgram executes @fuzz_target(ptr,len) (or @main) on input and returns
// (result, output, cycles, error). The machine is reset first.
func RunProgram(mach *Machine, input []byte) (int64, string, int64, error) {
	mach.Reset()
	start := mach.Cycles
	var ret int64
	var err error
	if _, ok := mach.Exe.Lookup("fuzz_target"); ok {
		var p, n int64
		p, n, err = mach.Env.WriteInput(input)
		if err != nil {
			return 0, "", 0, err
		}
		ret, err = mach.Run("fuzz_target", p, n)
	} else {
		ret, err = mach.Run("main")
	}
	return ret, mach.Env.Out.String(), mach.Cycles - start, err
}
