package vm

import (
	"math/rand"
	"strings"
	"testing"

	"odin/internal/interp"
	"odin/internal/ir"
	"odin/internal/irtext"
	"odin/internal/link"
	"odin/internal/progen"
	"odin/internal/rt"
	"odin/internal/toolchain"
)

func compile(t *testing.T, m *ir.Module, level int) *link.Executable {
	t.Helper()
	exe, _, err := toolchain.BuildPreserving(m, level)
	if err != nil {
		t.Fatal(err)
	}
	return exe
}

// runBoth executes fn on both engines and checks results agree; returns the
// VM result.
func runBoth(t *testing.T, m *ir.Module, level int, fn string, args ...int64) int64 {
	t.Helper()
	exe := compile(t, m, level)
	mach := New(exe)
	got, errV := mach.Run(fn, args...)

	ip, err := interp.New(m, newEnv())
	if err != nil {
		t.Fatal(err)
	}
	want, errI := ip.Run(fn, args...)
	if (errV == nil) != (errI == nil) {
		t.Fatalf("%s(%v) level %d: trap mismatch vm=%v interp=%v", fn, args, level, errV, errI)
	}
	if errV != nil {
		return 0
	}
	if got != want {
		t.Fatalf("%s(%v) level %d: vm=%d interp=%d", fn, args, level, got, want)
	}
	if vmOut, ipOut := mach.Env.Out.String(), ip.Env.Out.String(); vmOut != ipOut {
		t.Fatalf("%s(%v) level %d: output vm=%q interp=%q", fn, args, level, vmOut, ipOut)
	}
	return got
}

const isLowerSrc = `
func @islower(%chr: i8) -> i1 {
test_lb:
  %cmp1 = icmp sge i8 %chr, 97
  condbr %cmp1, test_ub, end
test_ub:
  %cmp2 = icmp sle i8 %chr, 122
  br end
end:
  %r = phi i1 [0, test_lb], [%cmp2, test_ub]
  ret i1 %r
}
`

func TestVMIsLowerAllLevels(t *testing.T) {
	for _, level := range []int{0, 1, 2} {
		m := irtext.MustParse("m", isLowerSrc)
		for c := 0; c < 256; c += 7 {
			got := runBoth(t, m, level, "islower", ir.TruncToWidth(int64(c), ir.I8))
			want := int64(0)
			if c >= 'a' && c <= 'z' {
				want = 1
			}
			if got != want {
				t.Fatalf("level %d: islower(%d) = %d, want %d", level, c, got, want)
			}
		}
	}
}

func TestVMLoopAndMemory(t *testing.T) {
	src := `
global @hist : [8 x i64] = zero
func @main(%n: i64) -> i64 {
entry:
  br head
head:
  %i = phi i64 [0, entry], [%i2, body]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %bucket = and i64 %i, 7
  %p = gep @hist, %bucket, scale 8
  %old = load i64, %p
  %new = add i64 %old, 1
  store i64 %new, %p
  %i2 = add i64 %i, 1
  br head
exit:
  %p0 = gep @hist, 3, scale 8
  %v = load i64, %p0
  ret i64 %v
}
`
	for _, level := range []int{0, 2} {
		m := irtext.MustParse("m", src)
		got := runBoth(t, m, level, "main", 20)
		if got != 3 { // i = 3, 11, 19
			t.Fatalf("level %d: got %d, want 3", level, got)
		}
	}
}

func TestVMCallsAndBuiltins(t *testing.T) {
	src := `
const @msg : [4 x i8] = bytes"\68\69\0a\00"
declare func @printf(%fmt: ptr) -> i32
declare func @print_i64(%v: i64) -> void
func @double(%x: i64) -> i64 internal noinline {
entry:
  %r = mul i64 %x, 2
  ret i64 %r
}
func @main(%x: i64) -> i64 {
entry:
  %a = call i64 @double(i64 %x)
  %b = call i64 @double(i64 %a)
  call void @print_i64(i64 %b)
  %n = call i32 @printf(ptr @msg)
  %n64 = sext i32 %n to i64
  %r = add i64 %b, %n64
  ret i64 %r
}
`
	for _, level := range []int{0, 1, 2} {
		m := irtext.MustParse("m", src)
		got := runBoth(t, m, level, "main", 5)
		if got != 23 { // 20 + len("hi\n")
			t.Fatalf("level %d: got %d, want 23", level, got)
		}
	}
}

func TestVMAlloca(t *testing.T) {
	src := `
func @main() -> i64 {
entry:
  %buf = alloca i64, 4
  %p1 = gep %buf, 1, scale 8
  %p3 = gep %buf, 3, scale 8
  store i64 10, %buf
  store i64 20, %p1
  store i64 30, %p3
  %a = load i64, %buf
  %b = load i64, %p1
  %c = load i64, %p3
  %s1 = add i64 %a, %b
  %s2 = add i64 %s1, %c
  ret i64 %s2
}
`
	for _, level := range []int{0, 2} {
		m := irtext.MustParse("m", src)
		if got := runBoth(t, m, level, "main"); got != 60 {
			t.Fatalf("level %d: got %d, want 60", level, got)
		}
	}
}

func TestVMSwitch(t *testing.T) {
	src := `
func @classify(%x: i64) -> i64 {
entry:
  switch i64 %x [1: one, 2: two, 9: nine] default other
one:
  ret i64 100
two:
  ret i64 200
nine:
  ret i64 900
other:
  ret i64 -1
}
`
	for _, level := range []int{0, 2} {
		m := irtext.MustParse("m", src)
		for in, want := range map[int64]int64{1: 100, 2: 200, 9: 900, 4: -1} {
			if got := runBoth(t, m, level, "classify", in); got != want {
				t.Fatalf("level %d: classify(%d)=%d want %d", level, in, got, want)
			}
		}
	}
}

func TestVMSelect(t *testing.T) {
	src := `
func @pick(%c: i64, %a: i64, %b: i64) -> i64 {
entry:
  %cond = icmp ne i64 %c, 0
  %r = select i64 %cond, %a, %b
  ret i64 %r
}
`
	m := irtext.MustParse("m", src)
	if got := runBoth(t, m, 0, "pick", 1, 7, 9); got != 7 {
		t.Fatalf("got %d want 7", got)
	}
	m2 := irtext.MustParse("m", src)
	if got := runBoth(t, m2, 0, "pick", 0, 7, 9); got != 9 {
		t.Fatalf("got %d want 9", got)
	}
}

func TestVMTraps(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"div", "func @f(%x: i64) -> i64 {\nentry:\n  %r = sdiv i64 10, %x\n  ret i64 %r\n}", "sdiv by zero"},
		{"unreachable", "func @f(%x: i64) -> i64 {\nentry:\n  unreachable\n}", "trap"},
		{"nullload", "func @f(%x: i64) -> i64 {\nentry:\n  %r = load i64, %x\n  ret i64 %r\n}", "out-of-bounds"},
	}
	for _, c := range cases {
		m := irtext.MustParse("m", c.src)
		exe := compile(t, m, 0)
		mach := New(exe)
		_, err := mach.Run("f", 0)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err=%v, want %q", c.name, err, c.want)
		}
	}
}

func TestVMAlias(t *testing.T) {
	src := `
func @real(%x: i64) -> i64 {
entry:
  %r = add i64 %x, 1
  ret i64 %r
}
alias @aka = @real
func @main() -> i64 {
entry:
  %r = call i64 @aka(i64 41)
  ret i64 %r
}
`
	m := irtext.MustParse("m", src)
	if got := runBoth(t, m, 0, "main"); got != 42 {
		t.Fatalf("alias call: got %d, want 42", got)
	}
}

func TestVMCyclesPositiveAndOptimizationHelps(t *testing.T) {
	src := `
func @work(%n: i64) -> i64 {
entry:
  br head
head:
  %i = phi i64 [0, entry], [%i2, body]
  %acc = phi i64 [0, entry], [%acc2, body]
  %c = icmp slt i64 %i, %n
  condbr %c, body, exit
body:
  %t1 = mul i64 %i, 1
  %t2 = add i64 %t1, 0
  %t3 = xor i64 %t2, 0
  %acc2 = add i64 %acc, %t3
  %i2 = add i64 %i, 1
  br head
exit:
  ret i64 %acc
}
`
	m0 := irtext.MustParse("m", src)
	exe0 := compile(t, m0, 0)
	mach0 := New(exe0)
	r0, err := mach0.Run("work", 500)
	if err != nil {
		t.Fatal(err)
	}

	m2 := irtext.MustParse("m", src)
	exe2 := compile(t, m2, 2)
	mach2 := New(exe2)
	r2, err := mach2.Run("work", 500)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != r2 {
		t.Fatalf("results differ: %d vs %d", r0, r2)
	}
	if mach2.Cycles >= mach0.Cycles {
		t.Fatalf("optimization did not reduce cycles: O0=%d O2=%d", mach0.Cycles, mach2.Cycles)
	}
	if mach0.Cycles <= 0 {
		t.Fatal("cycles not counted")
	}
}

func TestVMReset(t *testing.T) {
	src := `
global @state : i64 = zero
func @main() -> i64 {
entry:
  %v = load i64, @state
  %n = add i64 %v, 1
  store i64 %n, @state
  ret i64 %n
}
`
	m := irtext.MustParse("m", src)
	exe := compile(t, m, 0)
	mach := New(exe)
	if r, _ := mach.Run("main"); r != 1 {
		t.Fatalf("first run: %d", r)
	}
	if r, _ := mach.Run("main"); r != 2 {
		t.Fatalf("second run (no reset): %d", r)
	}
	mach.Reset()
	if r, _ := mach.Run("main"); r != 1 {
		t.Fatalf("after reset: %d", r)
	}
}

// TestVMDifferentialRandom cross-checks VM vs interpreter on random modules
// at all optimization levels.
func TestVMDifferentialRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := randomModule(rng)
		ir.MustVerify(m)
		for _, level := range []int{0, 1, 2} {
			for trial := 0; trial < 5; trial++ {
				a := rng.Int63n(100) - 50
				b := rng.Int63n(100) - 50
				mc, _ := ir.CloneModule(m)
				runBoth(t, mc, level, "main", a, b)
			}
		}
	}
}

func randomModule(rng *rand.Rand) *ir.Module {
	m := ir.NewModule("rand")
	h := ir.NewFunc(m, "helper", &ir.FuncType{Params: []ir.Type{ir.I64}, Ret: ir.I64}, []string{"v"})
	if rng.Intn(2) == 0 {
		h.Linkage = ir.Internal
	}
	hb := h.AddBlock("entry")
	bld := ir.NewBuilder()
	bld.SetBlock(hb)
	var hv ir.Value = h.Params[0]
	for i := 0; i < rng.Intn(6)+1; i++ {
		ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpXor, ir.OpAnd, ir.OpOr, ir.OpShl}
		op := ops[rng.Intn(len(ops))]
		c := rng.Int63n(30) + 1
		if op == ir.OpShl {
			c = rng.Int63n(8)
		}
		hv = bld.Bin(op, hv, ir.Const(ir.I64, c))
	}
	bld.Ret(hv)

	f := ir.NewFunc(m, "main", &ir.FuncType{Params: []ir.Type{ir.I64, ir.I64}, Ret: ir.I64}, []string{"x", "y"})
	entry := f.AddBlock("entry")
	loopH := f.AddBlock("head")
	loopB := f.AddBlock("body")
	exit := f.AddBlock("exit")
	bld.SetBlock(entry)
	n := bld.And(f.Params[0], ir.Const(ir.I64, 15))
	bld.Br(loopH)
	bld.SetBlock(loopH)
	iPhi := bld.Phi(ir.I64, []ir.Value{ir.Const(ir.I64, 0), nil}, []*ir.Block{entry, loopB})
	accPhi := bld.Phi(ir.I64, []ir.Value{f.Params[1], nil}, []*ir.Block{entry, loopB})
	c := bld.ICmp(ir.PredSLT, iPhi, n)
	bld.CondBr(c, loopB, exit)
	bld.SetBlock(loopB)
	hres := bld.Call(ir.I64, "helper", accPhi)
	acc2 := bld.Add(hres, iPhi)
	i2 := bld.Add(iPhi, ir.Const(ir.I64, 1))
	iPhi.Operands[1] = i2
	accPhi.Operands[1] = acc2
	bld.Br(loopH)
	bld.SetBlock(exit)
	bld.Ret(accPhi)
	return m
}

func newEnv() *rt.Env { return rt.NewEnv() }

// TestVMTrapParityWithInterp: bug-triggering inputs must trap identically
// on both engines (crash reproduction fidelity).
func TestVMTrapParityWithInterp(t *testing.T) {
	m := progen.Demo().Generate()
	exe := compile(t, m, 2)
	inputs := [][]byte{
		{0x42, 0x42, 0x55, 0x47}, // the planted bug
		{0x42, 0x42, 0x55, 0x46}, // one byte off: no bug
		[]byte("harmless"),
	}
	for _, in := range inputs {
		mach := New(exe)
		_, _, _, errV := RunProgram(mach, in)
		_, _, errI := interp.RunProgram(m, in)
		if (errV == nil) != (errI == nil) {
			t.Fatalf("input %v: trap parity broken: vm=%v interp=%v", in, errV, errI)
		}
		if errV != nil && !strings.Contains(errV.Error(), "abort") {
			t.Fatalf("input %v: wrong trap: %v", in, errV)
		}
	}
}
