// Package odin is an on-demand instrumentation framework with on-the-fly
// recompilation, a Go reproduction of "Odin: On-Demand Instrumentation with
// On-the-Fly Recompilation" (PLDI 2022).
//
// Odin works as an instrumentation library that cooperates with a fuzzer
// closely. Before fuzzing starts it partitions the whole-program IR into
// code fragments whose boundaries preserve every optimization; during
// fuzzing, when the instrumentation requirement changes, it locates the
// changed fragments, re-instruments, re-optimizes, and re-compiles just
// those fragments, relinking the machine-code cache into a fresh
// executable:
//
//	m, _ := irtext.Parse("target", source)
//	engine, _ := odin.New(m, odin.Options{})
//	probeID := engine.Manager.Add(myProbe)     // probes reference the pristine IR
//	exe, _, _ := engine.BuildAll()             // instrument -> optimize -> codegen -> link
//	...                                         // fuzz with vm.New(exe)
//	engine.Manager.Remove(probeID)             // requirement changed
//	sched, _ := engine.Schedule()              // Algorithm 2: minimal fragment set
//	exe, stats, _ = sched.Rebuild()            // on-the-fly recompilation
//
// The implementation spans several internal packages — ir (the SSA IR),
// irtext (its textual format), opt (the optimizer), codegen/obj/link (the
// back end), vm (the cycle-accurate execution engine), core (the framework
// itself), cov (the OdinCov/OdinCmp tools), sancov/dbi/binrw (the paper's
// baselines), fuzz (a coverage-guided fuzzer), progen (the 13-program
// evaluation suite), and bench (the experiment harness). This package
// re-exports the user-facing surface.
package odin

import (
	"odin/internal/core"
	"odin/internal/ir"
	"odin/internal/telemetry"
)

// Core framework types.
type (
	// Engine is the Odin framework instance for one program: pristine
	// IR, partition plan, probe manager, and machine-code cache.
	Engine = core.Engine
	// Options configures an Engine.
	Options = core.Options
	// Variant selects the partition scheme (Table 1).
	Variant = core.Variant
	// Plan is a program's fragment partition.
	Plan = core.Plan
	// Fragment is one recompilation unit.
	Fragment = core.Fragment
	// Probe is one unit of instrumentation targeting a function.
	Probe = core.Probe
	// Instrumenter is a self-applying probe.
	Instrumenter = core.Instrumenter
	// PatchManager tracks dynamic probe state.
	PatchManager = core.PatchManager
	// Sched is one recompilation in flight.
	Sched = core.Sched
	// RebuildStats describes one on-the-fly recompilation.
	RebuildStats = core.RebuildStats
	// RebuildError reports a failed rebuild, naming every fragment that
	// failed to compile; the fragment cache is untouched on failure.
	RebuildError = core.RebuildError
	// FragError is one fragment's compile failure inside a RebuildError,
	// attributed to a pipeline stage (and optimizer pass, when known), with
	// the stack captured when the failure was a recovered panic.
	FragError = core.FragError
	// TimeoutError reports that Options.RebuildTimeout expired; the cache
	// and current executable are untouched.
	TimeoutError = core.TimeoutError
	// Classification is the symbol survey (Bond / Copy-on-use / Fixed).
	Classification = core.Classification
	// EngineSnapshot is the introspection view of live engine state served
	// by the telemetry endpoint at /debug/odin.
	EngineSnapshot = core.EngineSnapshot
)

// Telemetry re-exports. Attach a telemetry.NewRegistry() via
// Options.Telemetry to collect rebuild metrics and span traces with zero
// overhead when unset, and telemetry.Serve to expose them over HTTP.
type (
	// TelemetryRegistry is the metric-and-trace registry engines report to.
	TelemetryRegistry = telemetry.Registry
	// TelemetryServer is the introspection HTTP endpoint.
	TelemetryServer = telemetry.Server
)

// NewTelemetry returns an empty registry for Options.Telemetry.
func NewTelemetry() *TelemetryRegistry { return telemetry.NewRegistry() }

// ServeTelemetry starts the introspection endpoint on addr (host:port; port
// 0 picks a free port) serving Prometheus text at /metrics, a JSON snapshot
// of status() plus metrics and recent rebuild traces at /debug/odin, and
// net/http/pprof under /debug/pprof/.
func ServeTelemetry(addr string, reg *TelemetryRegistry, status func() any) (*TelemetryServer, error) {
	return telemetry.Serve(addr, reg, status)
}

// Partition variants.
const (
	VariantOdin = core.VariantOdin
	VariantOne  = core.VariantOne
	VariantMax  = core.VariantMax
)

// New surveys and partitions a program, returning an engine with a cold
// machine-code cache.
func New(m *ir.Module, opts Options) (*Engine, error) { return core.New(m, opts) }

// Partition runs the survey and Algorithm 1 without creating an engine.
func Partition(m *ir.Module, v Variant, optLevel int) (*Plan, error) {
	return core.Partition(m, v, optLevel)
}
