package odin

import (
	"testing"

	"odin/internal/ir"
	"odin/internal/irtext"
	"odin/internal/vm"
)

// TestFacadeQuickstart exercises the package-level public API end to end.
func TestFacadeQuickstart(t *testing.T) {
	m := irtext.MustParse("facade", `
func @double(%x: i64) -> i64 internal noinline {
entry:
  %r = mul i64 %x, 2
  ret i64 %r
}
func @main() -> i64 {
entry:
  %r = call i64 @double(i64 21)
  ret i64 %r
}
`)
	plan, err := Partition(m, VariantOdin, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Fragments) == 0 {
		t.Fatal("no fragments")
	}
	engine, err := New(m, Options{Variant: VariantOdin})
	if err != nil {
		t.Fatal(err)
	}
	exe, stats, err := engine.BuildAll()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Total <= 0 {
		t.Fatal("no build time recorded")
	}
	mach := vm.New(exe)
	got, err := mach.Run("main")
	if err != nil || got != 42 {
		t.Fatalf("main() = %d, %v", got, err)
	}
	// The facade aliases must be the core types (probe round trip).
	var _ Probe = probeImpl{}
	id := engine.Manager.Add(probeImpl{})
	if err := engine.Manager.Remove(id); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.Schedule(); err != nil {
		t.Fatal(err)
	}
	_ = ir.Print(m)
}

type probeImpl struct{}

func (probeImpl) PatchTarget() string { return "main" }
