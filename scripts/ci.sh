#!/bin/sh
# CI entry point: vet, build, full tests, race tests on the concurrent
# packages, and a gofmt cleanliness check. Mirrors `make ci`.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
# ./... covers every package, including internal/faultinject.
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (core, link, faultinject) =="
go test -race ./internal/core/... ./internal/link/... ./internal/faultinject/...

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi
# The fault injector is the robustness-test substrate; hold it to a clean
# gofmt bar explicitly even if the tree-wide check above is ever narrowed.
out="$(gofmt -l internal/faultinject)"
if [ -n "$out" ]; then
	echo "gofmt needed in internal/faultinject:"
	echo "$out"
	exit 1
fi

echo "ci: all checks passed"
