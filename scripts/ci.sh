#!/bin/sh
# CI entry point: vet, build, full tests, race tests on the concurrent
# packages, and a gofmt cleanliness check. Mirrors `make ci`.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
# ./... covers every package, including internal/faultinject.
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test (ODIN_VERIFY=all: strict IR verification after every optimizer pass) =="
# Re-run the engine-bearing packages (the only ones that read ODIN_VERIFY)
# with the every-pass tier on: any optimizer pass that emits IR violating SSA
# dominance or the type rules fails its test here with the pass named in the
# error.
ODIN_VERIFY=all go test ./internal/core/ ./internal/cov/ ./internal/bench/

echo "== go test -race (core, link, faultinject, telemetry, rt, cov, persist, serve) =="
go test -race ./internal/core/... ./internal/link/... ./internal/faultinject/... \
	./internal/telemetry/... ./internal/rt/... ./internal/cov/... ./internal/persist/... \
	./internal/serve/...

echo "== supervisor soak (-race, ~30s) =="
# Bounded concurrent-supervisor soak: 8 goroutines of random probe toggles
# against a fault-injecting engine under the race detector. The test asserts
# no admitted ticket is lost or resolved twice, and that the final image is
# never a stale commit — it must replay identically to a serially-built
# reference with the same probe state.
ODIN_SOAK_MS=30000 go test -race -run TestSupervisorSoak -timeout 10m ./internal/core/

echo "== metrics endpoint smoke test =="
# Start an Odin-engine run that serves telemetry on a free port and lingers,
# scrape /metrics, and assert the core families are exposed in Prometheus
# text format.
errlog="$(mktemp)"
metrics="$(mktemp)"
go run ./cmd/odin-run -odin -program json -input smoke \
	-metrics-addr 127.0.0.1:0 -metrics-hold 10s >/dev/null 2>"$errlog" &
run_pid=$!
addr=""
for _ in $(seq 1 100); do
	addr="$(sed -n 's/^telemetry: serving on //p' "$errlog")"
	[ -n "$addr" ] && break
	sleep 0.1
done
if [ -z "$addr" ]; then
	echo "metrics smoke: endpoint never came up; stderr:"
	cat "$errlog"
	kill "$run_pid" 2>/dev/null || true
	exit 1
fi
curl -sf "http://$addr/metrics" >"$metrics"
kill "$run_pid" 2>/dev/null || true
wait "$run_pid" 2>/dev/null || true
for family in odin_rebuilds_total odin_fragment_cache_hits_total \
	odin_fragment_degraded_total odin_link_total odin_rebuild_seconds \
	odin_verify_checks_total odin_verify_seconds; do
	if ! grep -q "^# TYPE $family" "$metrics"; then
		echo "metrics smoke: family $family missing from /metrics:"
		cat "$metrics"
		exit 1
	fi
done
rm -f "$errlog" "$metrics"
echo "metrics smoke: ok"

echo "== persist crash-restart smoke =="
# Kill-9 tolerance end to end, at process granularity: seed a persistent
# cache + snapshot with a clean run (recording the reference image
# fingerprint), SIGKILL fresh runs against the same cache dir at varying
# points mid-build, then assert a final restart (a) does not crash on
# whatever half-written state the kills left behind, (b) serves warm hits
# from the surviving entries, and (c) produces a byte-identical image.
pdir="$(mktemp -d)"
go build -o "$pdir/odin-run" ./cmd/odin-run
seed_log="$pdir/seed.log"
"$pdir/odin-run" -odin -program libxml2 \
	-cache-dir "$pdir/cache" -snapshot "$pdir/state.snap" >/dev/null 2>"$seed_log"
ref="$(sed -n 's/.*image \([0-9a-f]\{16\}\).*/\1/p' "$seed_log")"
if [ -z "$ref" ]; then
	echo "crash-restart smoke: seed run printed no image fingerprint:"
	cat "$seed_log"
	exit 1
fi
for delay in 0 0.02 0.05 0.1; do
	"$pdir/odin-run" -odin -program libxml2 \
		-cache-dir "$pdir/cache" -snapshot "$pdir/state.snap" >/dev/null 2>&1 &
	victim=$!
	sleep "$delay"
	kill -9 "$victim" 2>/dev/null || true
	wait "$victim" 2>/dev/null || true
done
final_log="$pdir/final.log"
"$pdir/odin-run" -odin -program libxml2 \
	-cache-dir "$pdir/cache" -snapshot "$pdir/state.snap" >/dev/null 2>"$final_log"
warm="$(sed -n 's/^; persist: \([0-9]*\)\/.*/\1/p' "$final_log")"
img="$(sed -n 's/.*image \([0-9a-f]\{16\}\).*/\1/p' "$final_log")"
if [ -z "$warm" ] || [ "$warm" -eq 0 ]; then
	echo "crash-restart smoke: no warm hits after kill-9 storm:"
	cat "$final_log"
	exit 1
fi
if [ "$img" != "$ref" ]; then
	echo "crash-restart smoke: image diverged after kill-9 storm: $img != $ref"
	cat "$final_log"
	exit 1
fi
rm -rf "$pdir"
echo "crash-restart smoke: ok ($warm fragments warm, image $img unchanged)"

echo "== serve control-plane smoke (2 shards, kill -9, warm restart) =="
# The probe-control plane end to end, at process granularity: boot a
# two-shard odin-serve daemon with a persist root, drive probe traffic into
# both shards through odin-ctl, SIGKILL the daemon (no drain, no snapshot
# rewrite — only the kill-9-tolerant object store survives), then restart on
# the same -data root and assert both shards report warm hits > 0 on their
# boot builds. Warm-starting through an unclean death is the property the
# per-shard persist layout exists to provide.
sdir="$(mktemp -d)"
go build -o "$sdir/odin-serve" ./cmd/odin-serve
go build -o "$sdir/odin-ctl" ./cmd/odin-ctl
serve_log="$sdir/serve1.log"
"$sdir/odin-serve" -shard a=json -shard b=woff2 -data "$sdir/data" \
	-addr 127.0.0.1:0 >/dev/null 2>"$serve_log" &
serve_pid=$!
saddr=""
for _ in $(seq 1 300); do
	saddr="$(sed -n 's/^odin-serve: listening on //p' "$serve_log")"
	[ -n "$saddr" ] && break
	sleep 0.1
done
if [ -z "$saddr" ]; then
	echo "serve smoke: daemon never came up; stderr:"
	cat "$serve_log"
	kill "$serve_pid" 2>/dev/null || true
	exit 1
fi
"$sdir/odin-ctl" -addr "http://$saddr" -tenant ci storm a 10 >/dev/null
"$sdir/odin-ctl" -addr "http://$saddr" -tenant ci storm b 10 >/dev/null
"$sdir/odin-ctl" -addr "http://$saddr" fleet >/dev/null
kill -9 "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
serve_log2="$sdir/serve2.log"
"$sdir/odin-serve" -shard a=json -shard b=woff2 -data "$sdir/data" \
	-addr 127.0.0.1:0 >/dev/null 2>"$serve_log2" &
serve_pid=$!
for _ in $(seq 1 300); do
	grep -q '^odin-serve: listening on ' "$serve_log2" && break
	sleep 0.1
done
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
for shard in a b; do
	warm="$(sed -n "s/^odin-serve: shard $shard hosting [^,]*, warm hits //p" "$serve_log2")"
	if [ -z "$warm" ] || [ "$warm" -eq 0 ]; then
		echo "serve smoke: shard $shard restarted cold after kill -9 (warm hits: ${warm:-none}):"
		cat "$serve_log2"
		exit 1
	fi
	echo "serve smoke: shard $shard warm hits $warm after kill -9 restart"
done
rm -rf "$sdir"
echo "serve smoke: ok"

echo "== serve chaos smoke (hot-spare promotion under injected wedge) =="
# The self-healing ladder end to end, at process granularity: boot a
# one-shard daemon with a hot-spare replica and a tight watchdog, arm a
# one-shot 2s stall at the supervisor commit site (via -chaos-site), and
# keep probe traffic flowing. The stall wedges the primary past its
# generation deadline; the watchdog must promote the spare without dropping
# a single probe commit (every odin-ctl storm invocation must exit 0 — its
# retry loop only absorbs shed/backpressure verdicts, not failures).
cdir="$(mktemp -d)"
go build -o "$cdir/odin-serve" ./cmd/odin-serve
go build -o "$cdir/odin-ctl" ./cmd/odin-ctl
chaos_log="$cdir/serve.log"
"$cdir/odin-serve" -shard s=json -data "$cdir/data" -addr 127.0.0.1:0 \
	-replicas 1 -restart-attempts -1 \
	-watchdog-interval 50ms -gen-deadline 300ms -stuck-queue-age 500ms \
	-chaos-site supervisor:commit -chaos-stall 2s -chaos-delay 1s \
	>/dev/null 2>"$chaos_log" &
chaos_pid=$!
caddr=""
for _ in $(seq 1 300); do
	caddr="$(sed -n 's/^odin-serve: listening on //p' "$chaos_log")"
	[ -n "$caddr" ] && break
	sleep 0.1
done
if [ -z "$caddr" ]; then
	echo "chaos smoke: daemon never came up; stderr:"
	cat "$chaos_log"
	kill "$chaos_pid" 2>/dev/null || true
	exit 1
fi
# Wait for the spare to converge before wedging the primary.
for _ in $(seq 1 300); do
	"$cdir/odin-ctl" -addr "http://$caddr" health | grep -q 'spare-ready' && break
	sleep 0.1
done
# Storm until the watchdog has promoted; every storm must commit cleanly
# even while the wedge and the failover swap are in flight.
promoted=""
for _ in $(seq 1 40); do
	"$cdir/odin-ctl" -addr "http://$caddr" -tenant ci storm s 20 >/dev/null
	if "$cdir/odin-ctl" -addr "http://$caddr" health | grep -q 'promotions=1'; then
		promoted=yes
		break
	fi
	sleep 0.2
done
health_out="$("$cdir/odin-ctl" -addr "http://$caddr" health)"
kill "$chaos_pid" 2>/dev/null || true
wait "$chaos_pid" 2>/dev/null || true
if [ -z "$promoted" ]; then
	echo "chaos smoke: watchdog never promoted the hot spare:"
	echo "$health_out"
	cat "$chaos_log"
	exit 1
fi
if ! echo "$health_out" | grep -q 'healthy'; then
	echo "chaos smoke: shard not healthy after promotion:"
	echo "$health_out"
	exit 1
fi
rm -rf "$cdir"
echo "chaos smoke: ok (spare promoted under wedge, zero dropped commits)"

echo "== persist fault sweep (persist:* sites) =="
# The persistence arm of the faults experiment: engine restarts onto a
# seeded cache with error/panic/stall faults armed at every persist:* site.
# odin-bench exits nonzero on any build error or image divergence — the
# verify-or-degrade contract at sweep scale. Bounded to three programs and
# two rounds to keep CI wall time in check; the full suite runs via
# `odin-bench -experiment faults`.
go run ./cmd/odin-bench -experiment faults -programs json,sqlite,libxml2 -fault-rounds 2

echo "== allocation budget (probe-toggle hot loop) =="
# The function-granular splice path's steady-state allocation envelope,
# pinned with testing.AllocsPerRun. Catches an accidental return to
# whole-fragment cloning long before it shows up as latency.
go test ./internal/core/ -run TestSpliceAllocBudget

echo "== bench regression gate (probe-toggle + verify-overhead + cold-warm + serve-storm + serve-chaos vs committed artifact) =="
# Compare the current tree's trajectory against the committed BENCH
# artifact: fail on >15% p50/p99 regression beyond a 2ms absolute floor
# (machine-jitter immunity), on a shrinking function cache-hit rate, on the
# structural invariant breaking (a single-function toggle must compile
# exactly one function), on boundaries-tier verification overhead above its
# 5% p50 budget, on a warm start falling below its absolute speedup floor
# (bench.WarmSpeedupFloor) or losing image byte-identity, on the serve
# control plane dropping healthy tenants' work / letting a hostile tenant
# push healthy p99 past bench.ServeIsolationFactor, or on a shard failover
# (restart or promotion under an injected wedge) dropping a healthy commit
# or overrunning bench.ChaosFailoverBudgetMS. All experiments run in one
# invocation so the artifact carries all of them (a missing experiment
# counts as a regression). Regenerate with `make bench-record` when a
# deliberate change moves the trajectory. Skipped when no artifact is
# committed.
bench_artifact="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)"
if [ -n "$bench_artifact" ]; then
	echo "comparing against $bench_artifact"
	go run ./cmd/odin-bench -experiment probe-toggle,verify-overhead,cold-warm,serve-storm,serve-chaos \
		-toggle-rounds 60 -coldwarm-rounds 5 -bench-compare "$bench_artifact"
else
	echo "no BENCH_*.json artifact committed; skipping regression gate"
fi

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi
# The fault injector is the robustness-test substrate; hold it to a clean
# gofmt bar explicitly even if the tree-wide check above is ever narrowed.
out="$(gofmt -l internal/faultinject)"
if [ -n "$out" ]; then
	echo "gofmt needed in internal/faultinject:"
	echo "$out"
	exit 1
fi

echo "ci: all checks passed"
