#!/bin/sh
# CI entry point: vet, build, full tests, race tests on the concurrent
# packages, and a gofmt cleanliness check. Mirrors `make ci`.
set -eu

cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (core, link) =="
go test -race ./internal/core/... ./internal/link/...

echo "== gofmt =="
out="$(gofmt -l .)"
if [ -n "$out" ]; then
	echo "gofmt needed on:"
	echo "$out"
	exit 1
fi

echo "ci: all checks passed"
